package mst

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// BaselineResult summarizes a run of the non-silent distributed Borůvka
// baseline, for the comparison column of experiment E4. The paper
// contrasts its silent construction with compact non-silent MST
// algorithms ([17], [51]): the baseline here builds the MST from scratch
// in O(log n) phases of tree-wide waves, uses O(log n)-bit registers,
// but is *not* silent — it cannot certify its output locally, so after
// stabilizing it would have to keep running (or re-run) to detect
// faults, and a verifier has nothing to check.
type BaselineResult struct {
	Tree *trees.Tree
	// Rounds charges each phase with the relaxation waves it needs:
	// fragment-internal min-ID and best-edge broadcasts.
	Rounds int
	// RegisterBits is the per-node working memory of the baseline.
	RegisterBits int
	// Phases is the number of Borůvka phases executed (≤ ceil(log2 n)).
	Phases int
}

// DistributedBoruvka simulates the synchronous distributed Borůvka
// construction: each phase, every fragment finds its minimum outgoing
// graph edge by a convergecast/broadcast inside the fragment, and the
// fragments merge. Rounds are charged per phase as two waves across the
// largest current fragment.
func DistributedBoruvka(g *graph.Graph, root graph.NodeID) (*BaselineResult, error) {
	if !g.HasNode(root) {
		return nil, fmt.Errorf("mst: unknown root %d", root)
	}
	nodes := g.Nodes()
	uf := graph.NewUnionFind(nodes)
	adj := make(map[graph.NodeID][]graph.NodeID, len(nodes))
	res := &BaselineResult{}
	for uf.Sets() > 1 {
		res.Phases++
		if res.Phases > g.N() {
			return nil, fmt.Errorf("mst: baseline did not converge")
		}
		// Minimum outgoing edge per fragment.
		chosen := make(map[graph.NodeID]graph.Edge)
		has := make(map[graph.NodeID]bool)
		for _, e := range g.Edges() {
			fu, fv := uf.Find(e.U), uf.Find(e.V)
			if fu == fv {
				continue
			}
			for _, f := range []graph.NodeID{fu, fv} {
				if !has[f] || lighter(e, chosen[f]) {
					chosen[f], has[f] = e, true
				}
			}
		}
		// Charge two waves across the largest fragment (convergecast of
		// candidate edges, broadcast of the winner).
		sizes := make(map[graph.NodeID]int)
		maxSize := 1
		for _, v := range nodes {
			sizes[uf.Find(v)]++
			if s := sizes[uf.Find(v)]; s > maxSize {
				maxSize = s
			}
		}
		res.Rounds += 2 * maxSize
		for _, e := range chosen {
			if uf.Union(e.U, e.V) {
				adj[e.U] = append(adj[e.U], e.V)
				adj[e.V] = append(adj[e.V], e.U)
			}
		}
	}
	t := trees.NewTree(root)
	stack := []graph.NodeID{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !t.Has(u) {
				t.AddChild(v, u)
				stack = append(stack, u)
			}
		}
	}
	if t.N() != g.N() {
		return nil, fmt.Errorf("mst: baseline produced a non-spanning structure")
	}
	// Working registers: fragment ID, phase counter, best-edge candidate
	// (two IDs and a weight): O(log n) bits.
	maxW := graph.Weight(1)
	for _, e := range g.Edges() {
		if e.W > maxW {
			maxW = e.W
		}
	}
	n := g.N()
	res.RegisterBits = runtime.BitsForValue(n) + runtime.BitsForValue(res.Phases) +
		2*runtime.BitsForValue(n) + runtime.BitsForValue(int(maxW))
	res.Tree = t
	return res, nil
}
