package mst

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Assignment is the verifiable MST configuration: the tree's parent
// pointers plus every node's Borůvka-trace label — the proof-labeling
// scheme for MST following the guidelines of Korman–Kutten [50] and
// Korman–Kutten–Peleg [52] that Section VI builds on. Each node checks,
// using only its own label and its neighbors' labels:
//
//	(V1) its level-1 fragment is itself;
//	(V2) all labels have the same number of levels;
//	(V3) tree neighbors in the same level-i fragment agree on the
//	     chosen edge f_i and stay together at level i+1;
//	(V4) if the node is an endpoint of f_i, the edge exists, is a tree
//	     edge, leaves the fragment, and the two endpoint fragments merge
//	     at level i+1;
//	(V5) no incident graph edge leaving the level-i fragment is lighter
//	     than f_i — the red-rule detector: exactly the local test whose
//	     failure witnesses φ(T) > 0;
//	(V6) the top level has no chosen edge and lower levels do.
type Assignment struct {
	Parent map[graph.NodeID]graph.NodeID
	Levels map[graph.NodeID][]LevelLabel
}

// FromTrace builds the assignment of a computed trace (the prover).
func FromTrace(t *trees.Tree, tr *Trace) Assignment {
	return Assignment{Parent: t.ParentMap(), Levels: tr.Levels}
}

// VerifyAt runs the verifier at node x.
func (a Assignment) VerifyAt(g *graph.Graph, x graph.NodeID) error {
	lx, ok := a.Levels[x]
	if !ok || len(lx) == 0 {
		return fmt.Errorf("mst: node %d unlabeled", x)
	}
	k := len(lx)
	// (V1)
	if lx[0].Fragment != x {
		return fmt.Errorf("mst: node %d has level-1 fragment %d, want itself", x, lx[0].Fragment)
	}
	// (V6)
	for i, ll := range lx {
		last := i == k-1
		if last && ll.HasEdge {
			return fmt.Errorf("mst: node %d has a chosen edge at the top level", x)
		}
		if !last && !ll.HasEdge {
			return fmt.Errorf("mst: node %d lacks a chosen edge at level %d", x, i+1)
		}
	}
	for _, u := range g.Neighbors(x) {
		lu, ok := a.Levels[u]
		if !ok {
			return fmt.Errorf("mst: neighbor %d of %d unlabeled", u, x)
		}
		// (V2)
		if len(lu) != k {
			return fmt.Errorf("mst: node %d has %d levels but neighbor %d has %d", x, k, u, len(lu))
		}
		isTreeNeighbor := a.Parent[u] == x || a.Parent[x] == u
		for i := 0; i < k; i++ {
			sameFrag := lu[i].Fragment == lx[i].Fragment
			// (V3)
			if isTreeNeighbor && sameFrag {
				if lx[i].HasEdge != lu[i].HasEdge || (lx[i].HasEdge && lx[i].Edge != lu[i].Edge) {
					return fmt.Errorf("mst: nodes %d and %d share level-%d fragment %d but disagree on f_%d",
						x, u, i+1, lx[i].Fragment, i+1)
				}
				if i+1 < k && lx[i+1].Fragment != lu[i+1].Fragment {
					return fmt.Errorf("mst: nodes %d and %d share level-%d fragment but split at level %d",
						x, u, i+1, i+2)
				}
			}
			// (V5)
			if !sameFrag {
				w, _ := g.EdgeWeight(x, u)
				inc := graph.Edge{U: x, V: u, W: w}
				if !lx[i].HasEdge {
					return fmt.Errorf("mst: node %d has outgoing edge %v at level %d but no chosen edge",
						x, inc, i+1)
				}
				if lighter(inc, lx[i].Edge) {
					return fmt.Errorf("mst: node %d sees edge %v lighter than f_%d = %v (red rule)",
						x, inc, i+1, lx[i].Edge)
				}
			}
		}
	}
	// (V4)
	for i, ll := range lx {
		if !ll.HasEdge {
			continue
		}
		e := ll.Edge
		if e.U != x && e.V != x {
			continue // endpoint responsibility only
		}
		other := e.Other(x)
		w, exists := g.EdgeWeight(x, other)
		if !exists {
			return fmt.Errorf("mst: node %d's f_%d = %v is not a graph edge", x, i+1, e)
		}
		if e.W != w {
			return fmt.Errorf("mst: node %d's f_%d carries weight %d, want %d", x, i+1, e.W, w)
		}
		if a.Parent[x] != other && a.Parent[other] != x {
			return fmt.Errorf("mst: node %d's f_%d = %v is not a tree edge", x, i+1, e)
		}
		lo := a.Levels[other]
		if len(lo) != len(lx) {
			continue // reported by (V2)
		}
		if lo[i].Fragment == ll.Fragment {
			return fmt.Errorf("mst: node %d's f_%d = %v does not leave fragment %d", x, i+1, e, ll.Fragment)
		}
		if i+1 < len(lx) && lx[i+1].Fragment != lo[i+1].Fragment {
			return fmt.Errorf("mst: endpoints of f_%d = %v do not merge at level %d", i+1, e, i+2)
		}
	}
	return nil
}

// Verify runs the verifier at every node, returning the first rejection.
func (a Assignment) Verify(g *graph.Graph) error {
	for _, x := range g.Nodes() {
		if err := a.VerifyAt(g, x); err != nil {
			return err
		}
	}
	return nil
}
