package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
)

func appendCRC(body []byte) []byte {
	return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// TestAdvertRoundtrip: every advert shape — with/without admin addr,
// with/without digest — survives encode→decode exactly and re-encodes
// canonically.
func TestAdvertRoundtrip(t *testing.T) {
	c := Codec(Switching{})
	cases := []Frame{
		{Kind: KindAdvert, Alg: c.Code(), Src: 1, Seq: 0},
		{Kind: KindAdvert, Alg: c.Code(), Src: 7, Seq: 41, AdminAddr: "127.0.0.1:8080"},
		{Kind: KindAdvert, Alg: c.Code(), Src: 3, Seq: 9, Neighbors: []graph.NodeID{1, 2, 9}},
		{Kind: KindAdvert, Alg: c.Code(), Src: 500, Seq: 1 << 40,
			AdminAddr: "[::1]:65535", Neighbors: []graph.NodeID{4, 99, 100, 1 << 30}},
	}
	var b bits.Builder
	for _, in := range cases {
		data, err := Encode(in, c, &b, nil)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		out, err := Decode(c, data)
		if err != nil {
			t.Fatalf("decode %+v: %v", in, err)
		}
		if out.Kind != KindAdvert || out.Src != in.Src || out.Seq != in.Seq ||
			out.Alg != in.Alg || out.AdminAddr != in.AdminAddr {
			t.Fatalf("header mismatch: got %+v want %+v", out, in)
		}
		if len(out.Neighbors) != len(in.Neighbors) {
			t.Fatalf("digest length: got %v want %v", out.Neighbors, in.Neighbors)
		}
		for i := range in.Neighbors {
			if out.Neighbors[i] != in.Neighbors[i] {
				t.Fatalf("digest: got %v want %v", out.Neighbors, in.Neighbors)
			}
		}
		data2, err := Encode(out, c, &b, nil)
		if err != nil || !bytes.Equal(data, data2) {
			t.Fatalf("re-encode not canonical: %x vs %x (%v)", data, data2, err)
		}
	}
}

// TestLeaveRoundtrip: a goodbye is pure identity and still roundtrips
// under both codecs.
func TestLeaveRoundtrip(t *testing.T) {
	for _, c := range []Codec{Spanning{}, Switching{}} {
		in := Frame{Kind: KindLeave, Alg: c.Code(), Src: 12, Seq: 77}
		var b bits.Builder
		data, err := Encode(in, c, &b, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decode(c, data)
		if err != nil {
			t.Fatal(err)
		}
		if out.Kind != KindLeave || out.Src != 12 || out.Seq != 77 || out.Alg != c.Code() {
			t.Fatalf("got %+v", out)
		}
		data2, err := Encode(out, c, &b, nil)
		if err != nil || !bytes.Equal(data, data2) {
			t.Fatalf("re-encode not canonical: %x vs %x (%v)", data, data2, err)
		}
	}
}

// TestMembershipEncodeRejects: malformed adverts are refused at the
// encoder, not silently mangled on the wire.
func TestMembershipEncodeRejects(t *testing.T) {
	c := Codec(Switching{})
	var b bits.Builder
	long := make([]byte, maxAdvertAddr+1)
	cases := []Frame{
		{Kind: KindAdvert, Alg: c.Code(), Src: 0},                                         // non-positive src
		{Kind: KindAdvert, Alg: c.Code(), Src: 1, AdminAddr: string(long)},                // addr over cap
		{Kind: KindAdvert, Alg: c.Code(), Src: 1, Neighbors: []graph.NodeID{3, 3}},        // not ascending
		{Kind: KindAdvert, Alg: c.Code(), Src: 1, Neighbors: []graph.NodeID{5, 2}},        // descending
		{Kind: KindAdvert, Alg: c.Code(), Src: 1, Neighbors: make([]graph.NodeID, 1<<13)}, // digest over cap
	}
	for i, f := range cases {
		if _, err := Encode(f, c, &b, nil); err == nil {
			t.Fatalf("case %d: encode accepted %+v", i, f)
		}
	}
}

// TestEveryByteFlipRejectedMembership: the CRC envelope covers the new
// kinds — any single flipped byte is rejected or decodes to a frame
// that is not byte-identical on re-encode (never silently accepted as
// the original).
func TestEveryByteFlipRejectedMembership(t *testing.T) {
	c := Codec(Switching{})
	var b bits.Builder
	frames := []Frame{
		{Kind: KindAdvert, Alg: c.Code(), Src: 9, Seq: 13,
			AdminAddr: "127.0.0.1:9000", Neighbors: []graph.NodeID{1, 4, 8}},
		{Kind: KindLeave, Alg: c.Code(), Src: 9, Seq: 13},
	}
	for _, f := range frames {
		data, err := Encode(f, c, &b, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), data...)
				mut[i] ^= 1 << uint(bit)
				if _, err := Decode(c, mut); err == nil {
					t.Fatalf("byte %d bit %d: corrupted frame accepted", i, bit)
				}
			}
		}
	}
}

// TestMembershipDecodeRejects: adversarial payloads under a valid CRC
// (lengths over cap, truncated fields) come back as ErrPayload, and a
// reserved compact kind as ErrKind.
func TestMembershipDecodeRejects(t *testing.T) {
	c := Codec(Switching{})

	// Hand-build a compact frame with an advert header whose digest
	// count claims more entries than the cap, CRC valid.
	build := func(fill func(b *bits.Builder)) []byte {
		var b bits.Builder
		b.Reset()
		fill(&b)
		data := []byte{magicCompact, byte(Version<<4) | byte(KindAdvert), c.Code()}
		data = b.AppendBytes(data)
		return appendCRC(data)
	}
	overDigest := build(func(b *bits.Builder) {
		b.AppendGamma(1)         // src
		b.AppendGamma(1)         // seq+1
		b.AppendGamma(1)         // addr len 0
		b.AppendGamma(1<<13 + 1) // digest count over cap
	})
	if _, err := Decode(c, overDigest); !errors.Is(err, ErrPayload) {
		t.Fatalf("over-cap digest: %v", err)
	}
	overAddr := build(func(b *bits.Builder) {
		b.AppendGamma(1)
		b.AppendGamma(1)
		b.AppendGamma(maxAdvertAddr + 2) // addr len over cap
	})
	if _, err := Decode(c, overAddr); !errors.Is(err, ErrPayload) {
		t.Fatalf("over-cap addr: %v", err)
	}
	truncAddr := build(func(b *bits.Builder) {
		b.AppendGamma(1)
		b.AppendGamma(1)
		b.AppendGamma(3) // addr len 2, but no addr bytes follow
	})
	if _, err := Decode(c, truncAddr); !errors.Is(err, ErrPayload) {
		t.Fatalf("truncated addr: %v", err)
	}
	// Reserved compact kind 7 with a valid CRC must be ErrKind.
	bad := []byte{magicCompact, byte(Version<<4) | 7, c.Code(), 0x80}
	bad = appendCRC(bad)
	if _, err := Decode(c, bad); !errors.Is(err, ErrKind) {
		t.Fatalf("reserved kind: %v", err)
	}
}

// FuzzMembershipCodec drives advert and leave frames through
// encode→decode with fuzzer-chosen identities, addresses, and digest
// shapes: exact recovery, canonical re-encode, and encoder rejection
// of anything out of contract.
func FuzzMembershipCodec(f *testing.F) {
	f.Add(int64(1), uint64(0), "", uint64(0), uint64(0), false)
	f.Add(int64(9), uint64(13), "127.0.0.1:9000", uint64(3), uint64(7), false)
	f.Add(int64(500), uint64(1)<<40, "[::1]:65535", uint64(1), uint64(1)<<20, true)
	f.Add(int64(-3), uint64(2), "x", uint64(2), uint64(0), false)
	f.Fuzz(func(t *testing.T, src int64, seq uint64, addr string, digestLen, digestStep uint64, leave bool) {
		c := Codec(Switching{})
		var b bits.Builder
		in := Frame{Kind: KindAdvert, Alg: c.Code(), Src: graph.NodeID(src), Seq: seq, AdminAddr: addr}
		if leave {
			in = Frame{Kind: KindLeave, Alg: c.Code(), Src: graph.NodeID(src), Seq: seq}
		}
		if digestLen > 0 && !leave {
			n := digestLen % 64
			step := digestStep%(1<<20) + 1
			id := graph.NodeID(0)
			for i := uint64(0); i < n; i++ {
				id += graph.NodeID(step)
				in.Neighbors = append(in.Neighbors, id)
			}
		}
		data, err := Encode(in, c, &b, nil)
		if err != nil {
			if in.Src >= 1 && len(in.AdminAddr) <= maxAdvertAddr {
				t.Fatalf("encoder rejected a lawful frame %+v: %v", in, err)
			}
			return
		}
		out, err := Decode(c, data)
		if err != nil {
			t.Fatalf("decode of freshly encoded frame failed: %v", err)
		}
		if out.Kind != in.Kind || out.Src != in.Src || out.Seq != in.Seq || out.AdminAddr != in.AdminAddr {
			t.Fatalf("mismatch: got %+v want %+v", out, in)
		}
		if len(out.Neighbors) != len(in.Neighbors) {
			t.Fatalf("digest: got %v want %v", out.Neighbors, in.Neighbors)
		}
		for i := range in.Neighbors {
			if out.Neighbors[i] != in.Neighbors[i] {
				t.Fatalf("digest: got %v want %v", out.Neighbors, in.Neighbors)
			}
		}
		re, err := Encode(out, c, &b, nil)
		if err != nil || !bytes.Equal(re, data) {
			t.Fatalf("re-encode not canonical: %x vs %x (%v)", data, re, err)
		}
	})
}
