package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/runtime"
)

// Delta heartbeats: the silence-exploiting wire family. A stabilized
// node's register never changes, so full-state heartbeats carry the
// same bytes forever; the delta family sends only what moved.
//
// The compact kinds (delta, resync, and the membership pair in
// membership.go) share one layout (byte offsets):
//
//	0  magic 0xA7 (1 byte, distinct from the classic "ST" prefix)
//	1  version<<4 | kind (1)
//	2  alg: register codec code (1)
//	3  payload (gamma-coded fields, zero-padded to a byte boundary)
//	.. crc32-IEEE of everything above (4, big-endian)
//
// There is no fixed src/seq/length envelope: identities and counters
// are gamma-coded inside the payload, so a quiet keep-alive is ~13
// bytes instead of the classic frame's ~36. The payload is
// self-delimiting; the decoder rejects ≥8 trailing bits and any set
// padding bit, so decode remains the exact inverse of encode, and the
// trailing CRC still catches any single corrupted byte.
//
// KindDelta payload:
//
//	gamma(src)            sender identity (node IDs are positive)
//	gamma(seq+1)          sender's heartbeat counter
//	gamma(seq-baseSeq+1)  anchor distance; 0 ⇒ self-contained
//	quiet report          termination-detector block (see quiet.go)
//	if self-contained:    presence bit, then the full register
//	                      (this frame BECOMES the receiver's anchor)
//	else:                 codec delta: per-field changed mask, then
//	                      the changed fields, relative to the anchor
//	                      register the receiver cached at baseSeq
//
// Deltas are anchored, not chained: every delta is relative to the
// sender's last self-contained frame, so duplicated or reordered
// deltas apply identically (the seq filter alone decides freshness)
// and one lost delta never poisons the next. A receiver holding no
// anchor — or an anchor older than baseSeq — cannot apply the delta;
// it answers with KindResync and the sender re-anchors by broadcasting
// a self-contained frame. Decode defers delta application (it has no
// access to the receiver's anchor cache): it parses src/seq/baseSeq
// and keeps the payload; ApplyDelta finishes the job.
//
// KindResync payload:
//
//	gamma(src)      requester identity
//	gamma(seq+1)    highest anchor seq the requester holds (0 = none)
const (
	magicCompact = 0xA7
	// compactHeaderLen and the shared trailerLen frame the payload.
	compactHeaderLen = 3
)

// The compact frame kinds.
const (
	// KindDelta carries the sender's register as a change-mask against a
	// seq-anchored base (or self-contained when BaseSeq == Seq).
	KindDelta Kind = 3
	// KindResync asks a neighbor to re-anchor: the requester is missing
	// the base a delta referenced.
	KindResync Kind = 4
)

// encodeCompact appends one compact frame (KindDelta, KindResync).
// For deltas with BaseSeq < Seq, f.Base must hold the anchor register
// the receiver is assumed to cache and f.State the current register.
func encodeCompact(f Frame, c Codec, b *bits.Builder, dst []byte) ([]byte, error) {
	if f.Src < 1 {
		return dst, fmt.Errorf("wire: compact frame from non-positive node %d", f.Src)
	}
	b.Reset()
	b.AppendGamma(uint64(f.Src))
	b.AppendGamma(f.Seq + 1)
	switch f.Kind {
	case KindDelta:
		if f.BaseSeq > f.Seq {
			return dst, fmt.Errorf("wire: delta base seq %d ahead of seq %d", f.BaseSeq, f.Seq)
		}
		b.AppendGamma(f.Seq - f.BaseSeq + 1)
		// The quiet report precedes the register body so a receiver can
		// read it even when the delta must be parked for ApplyDelta.
		appendQuiet(b, f.Q)
		if f.BaseSeq == f.Seq {
			// Self-contained: the anchor frame.
			b.AppendBit(f.State != nil)
			if f.State != nil {
				if err := c.AppendState(b, f.State); err != nil {
					return dst, err
				}
			}
		} else {
			if f.Base == nil || f.State == nil {
				return dst, fmt.Errorf("wire: delta frame needs base and current registers")
			}
			if err := c.AppendDelta(b, f.Base, f.State); err != nil {
				return dst, err
			}
		}
	case KindResync, KindLeave:
	case KindAdvert:
		if err := appendAdvert(b, f); err != nil {
			return dst, err
		}
	default:
		return dst, fmt.Errorf("%w: %d", ErrKind, f.Kind)
	}
	base := len(dst)
	dst = append(dst, magicCompact, byte(Version<<4)|byte(f.Kind), f.Alg)
	dst = b.AppendBytes(dst)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[base:])), nil
}

// decodeCompact parses one compact frame. scratch, when non-nil, backs
// the payload bit string so a steady-state receiver does not allocate
// per frame; the returned Frame's Payload aliases it.
func decodeCompact(c Codec, data []byte, scratch []uint64) (Frame, []uint64, error) {
	var f Frame
	if len(data) < compactHeaderLen+trailerLen {
		return f, scratch, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if data[1]>>4 != Version {
		return f, scratch, fmt.Errorf("%w: %d", ErrVersion, data[1]>>4)
	}
	f.Kind = Kind(data[1] & 0xf)
	if f.Kind < KindDelta || f.Kind > KindLeave {
		return f, scratch, fmt.Errorf("%w: %d", ErrKind, data[1]&0xf)
	}
	f.Alg = data[2]
	sum := binary.BigEndian.Uint32(data[len(data)-trailerLen:])
	if crc32.ChecksumIEEE(data[:len(data)-trailerLen]) != sum {
		return f, scratch, ErrChecksum
	}
	pay := data[compactHeaderLen : len(data)-trailerLen]
	s, scratch, err := bits.FromBytesBuf(scratch, pay, len(pay)*8)
	if err != nil {
		return f, scratch, fmt.Errorf("%w: %v", ErrPayload, err)
	}
	r := bits.NewReader(s)
	src, err := bits.ReadGamma(r)
	if err != nil {
		return f, scratch, fmt.Errorf("%w: src: %v", ErrPayload, err)
	}
	f.Src = graph.NodeID(src)
	if f.Src < 1 {
		return f, scratch, fmt.Errorf("%w: non-positive src %d", ErrPayload, f.Src)
	}
	seq1, err := bits.ReadGamma(r)
	if err != nil {
		return f, scratch, fmt.Errorf("%w: seq: %v", ErrPayload, err)
	}
	f.Seq = seq1 - 1
	switch f.Kind {
	case KindDelta:
		dist1, err := bits.ReadGamma(r)
		if err != nil {
			return f, scratch, fmt.Errorf("%w: base distance: %v", ErrPayload, err)
		}
		if dist1-1 > f.Seq {
			return f, scratch, fmt.Errorf("%w: base %d before seq 0", ErrPayload, dist1-1)
		}
		f.BaseSeq = f.Seq - (dist1 - 1)
		q, err := readQuiet(r)
		if err != nil {
			return f, scratch, fmt.Errorf("%w: quiet report: %v", ErrPayload, err)
		}
		f.Q = q
		if f.BaseSeq == f.Seq {
			present, err := r.ReadBit()
			if err != nil {
				return f, scratch, fmt.Errorf("%w: %v", ErrPayload, err)
			}
			if present {
				st, err := c.DecodeState(r)
				if err != nil {
					return f, scratch, fmt.Errorf("%w: %v", ErrPayload, err)
				}
				f.State = st
			}
		} else {
			// Delta application needs the receiver's anchor register;
			// park the undecoded remainder for ApplyDelta. Padding
			// canonicality is checked there — the frame cannot be
			// validated further without the base. The parked string
			// aliases scratch: apply the delta before the next
			// DecodeBuf call with the same buffer.
			f.delta, f.deltaOff = s, r.Pos()
			return f, scratch, nil
		}
	case KindAdvert:
		if err := readAdvert(r, &f); err != nil {
			return f, scratch, err
		}
	case KindResync, KindLeave:
	}
	if err := checkPadding(r); err != nil {
		return f, scratch, err
	}
	return f, scratch, nil
}

// ApplyDelta finishes decoding a non-self-contained delta frame
// against the anchor register the receiver cached at f.BaseSeq. It
// enforces the same canonicality contract as Decode: every payload bit
// is consumed, and trailing padding is all-zero and under one byte.
func ApplyDelta(c Codec, f Frame, base runtime.State) (runtime.State, error) {
	if f.Kind != KindDelta || f.BaseSeq >= f.Seq {
		return nil, fmt.Errorf("wire: ApplyDelta on a non-delta frame (kind %d)", f.Kind)
	}
	if base == nil {
		return nil, fmt.Errorf("wire: ApplyDelta without a base register")
	}
	r := bits.NewReader(f.delta)
	if err := r.Skip(f.deltaOff); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPayload, err)
	}
	st, err := c.ApplyDelta(r, base)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPayload, err)
	}
	if err := checkPadding(r); err != nil {
		return nil, err
	}
	return st, nil
}

// checkPadding enforces canonical zero-padding: whatever follows the
// last field must be under one byte of zero bits.
func checkPadding(r *bits.Reader) error {
	if r.Remaining() >= 8 {
		return fmt.Errorf("%w: %d trailing payload bits", ErrPayload, r.Remaining())
	}
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrPayload, err)
		}
		if b {
			return fmt.Errorf("%w: nonzero padding", ErrPayload)
		}
	}
	return nil
}
