package wire

import (
	"silentspan/internal/bits"
)

// QuietReport is the termination-detector block piggybacked on every
// heartbeat-class frame (classic KindHeartbeat and compact KindDelta).
// The cluster's Dijkstra–Scholten-style detector convergecasts
// subtree-quiet claims up the constructed tree and floods the root's
// announcement back down, all in-band: no extra frame kind, no extra
// cadence — silence detection rides the keep-alives that silence
// already pays for.
//
// Payload encoding (appended in this order):
//
//	gamma(epoch+1)  sender's write epoch — a Lamport clock over
//	                register writes and membership events
//	bit(sub)        "my whole subtree is quiet at this epoch"
//	gamma(count+1)  nodes covered by the subtree claim
//	gamma(ann+1)    announced epoch flooding down from the root;
//	                0 ⇒ no active announcement
//
// A zero-valued report costs 4 bits, so quiet-path keep-alives stay
// within their size budget. The block sits before any register state
// in the payload, so it decodes even from a non-self-contained delta
// whose body must be parked for ApplyDelta.
type QuietReport struct {
	// Epoch is the sender's monotone write epoch. Every local register
	// write and every membership event bumps it; receivers join it into
	// their own clock, so any change anywhere eventually dominates every
	// stale quiet claim.
	Epoch uint64
	// Sub claims the sender's entire subtree has been quiet at Epoch.
	Sub bool
	// Count is the number of nodes the Sub claim covers (the sender
	// plus its fresh children's counts). The root announces only when
	// its count equals the cluster size — the fragment guard that stops
	// a partitioned subtree from announcing for everyone.
	Count uint64
	// Ann is the epoch the root announced cluster-wide quiet at, or 0
	// when no announcement is active. It floods down the tree; a node
	// forwards it only while its own epoch still matches, so one write
	// anywhere retracts the announcement on the next cadence.
	Ann uint64
}

// appendQuiet encodes the report into the payload under construction.
func appendQuiet(b *bits.Builder, q QuietReport) {
	b.AppendGamma(q.Epoch + 1)
	b.AppendBit(q.Sub)
	b.AppendGamma(q.Count + 1)
	b.AppendGamma(q.Ann + 1)
}

// readQuiet decodes the report; the exact inverse of appendQuiet.
func readQuiet(r *bits.Reader) (QuietReport, error) {
	var q QuietReport
	e, err := bits.ReadGamma(r)
	if err != nil {
		return q, err
	}
	q.Epoch = e - 1
	q.Sub, err = r.ReadBit()
	if err != nil {
		return q, err
	}
	n, err := bits.ReadGamma(r)
	if err != nil {
		return q, err
	}
	q.Count = n - 1
	a, err := bits.ReadGamma(r)
	if err != nil {
		return q, err
	}
	q.Ann = a - 1
	return q, nil
}
