package wire

import (
	"fmt"

	"silentspan/internal/bfs"
	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
)

// Codec serializes one register type. Two codecs cover all five
// certified algorithms: the spanning substrate stores spanning.State,
// and the switching family — switching itself, the PLS-guided BFS, and
// the engine-driven MST/MDST — stores switching.State.
type Codec interface {
	// Code identifies the codec in the frame header.
	Code() uint8
	// Name identifies the codec in logs.
	Name() string
	// AppendState encodes s onto the builder. It fails on foreign state
	// types — a register from another algorithm never goes on the wire.
	AppendState(b *bits.Builder, s runtime.State) error
	// DecodeState parses one register off the reader.
	DecodeState(r *bits.Reader) (runtime.State, error)
	// AppendDelta encodes cur as a change-mask delta against base: one
	// changed bit per field, then the changed fields in order. Boolean
	// fields encode as a bare flip bit. An unchanged register encodes as
	// an all-zero mask — the quiet keep-alive.
	AppendDelta(b *bits.Builder, base, cur runtime.State) error
	// ApplyDelta parses one delta off the reader and applies it onto a
	// copy of base. A changed field carrying its base value is rejected
	// as non-canonical, keeping decode the exact inverse of encode.
	ApplyDelta(r *bits.Reader, base runtime.State) (runtime.State, error)
}

// The codec codes.
const (
	codeSpanning  uint8 = 1
	codeSwitching uint8 = 2
)

// appendInt gamma-codes a signed field: the zigzag fold maps small
// magnitudes of either sign to small codes (identities and distances
// are small; sentinel values like trees.None are tiny), then the
// Elias-gamma code of the folded value plus one makes it self-
// delimiting — 2⌈log₂|v|⌉+O(1) bits. The one unrepresentable value is
// math.MinInt64, whose fold saturates the +1; no register field can
// legitimately hold it, so it is refused rather than worked around.
func appendInt(b *bits.Builder, v int64) error {
	u := uint64(v<<1) ^ uint64(v>>63)
	if u == ^uint64(0) {
		return fmt.Errorf("wire: field value %d not encodable", v)
	}
	b.AppendGamma(u + 1)
	return nil
}

// readInt reverses appendInt.
func readInt(r *bits.Reader) (int64, error) {
	g, err := bits.ReadGamma(r)
	if err != nil {
		return 0, err
	}
	u := g - 1
	return int64(u>>1) ^ -int64(u&1), nil
}

// appendBit / readBit encode one boolean field.
func readBit(r *bits.Reader) (bool, error) { return r.ReadBit() }

// Spanning is the codec for spanning.State registers.
type Spanning struct{}

// Code implements Codec.
func (Spanning) Code() uint8 { return codeSpanning }

// Name implements Codec.
func (Spanning) Name() string { return "spanning" }

// AppendState implements Codec.
func (Spanning) AppendState(b *bits.Builder, s runtime.State) error {
	ss, ok := s.(spanning.State)
	if !ok {
		return fmt.Errorf("wire: spanning codec got %T", s)
	}
	for _, v := range []int64{int64(ss.Root), int64(ss.Parent), int64(ss.Dist)} {
		if err := appendInt(b, v); err != nil {
			return err
		}
	}
	return nil
}

// DecodeState implements Codec.
func (Spanning) DecodeState(r *bits.Reader) (runtime.State, error) {
	var s spanning.State
	root, err := readInt(r)
	if err != nil {
		return nil, err
	}
	parent, err := readInt(r)
	if err != nil {
		return nil, err
	}
	dist, err := readInt(r)
	if err != nil {
		return nil, err
	}
	s.Root, s.Parent, s.Dist = graph.NodeID(root), graph.NodeID(parent), int(dist)
	return s, nil
}

// AppendDelta implements Codec.
func (Spanning) AppendDelta(b *bits.Builder, base, cur runtime.State) error {
	bs, ok := base.(spanning.State)
	if !ok {
		return fmt.Errorf("wire: spanning codec got base %T", base)
	}
	cs, ok := cur.(spanning.State)
	if !ok {
		return fmt.Errorf("wire: spanning codec got %T", cur)
	}
	fields := [...][2]int64{
		{int64(bs.Root), int64(cs.Root)},
		{int64(bs.Parent), int64(cs.Parent)},
		{int64(bs.Dist), int64(cs.Dist)},
	}
	for _, f := range fields {
		b.AppendBit(f[0] != f[1])
	}
	for _, f := range fields {
		if f[0] != f[1] {
			if err := appendInt(b, f[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ApplyDelta implements Codec.
func (Spanning) ApplyDelta(r *bits.Reader, base runtime.State) (runtime.State, error) {
	s, ok := base.(spanning.State)
	if !ok {
		return nil, fmt.Errorf("wire: spanning codec got base %T", base)
	}
	var mask [3]bool
	for i := range mask {
		var err error
		if mask[i], err = r.ReadBit(); err != nil {
			return nil, err
		}
	}
	if mask[0] {
		v, err := readChanged(r, int64(s.Root))
		if err != nil {
			return nil, err
		}
		s.Root = graph.NodeID(v)
	}
	if mask[1] {
		v, err := readChanged(r, int64(s.Parent))
		if err != nil {
			return nil, err
		}
		s.Parent = graph.NodeID(v)
	}
	if mask[2] {
		v, err := readChanged(r, int64(s.Dist))
		if err != nil {
			return nil, err
		}
		s.Dist = int(v)
	}
	return s, nil
}

// readChanged reads one delta field and rejects the non-canonical case
// of a "changed" field carrying its base value: the encoder never
// emits it, so accepting it would break decode ≡ encode⁻¹.
func readChanged(r *bits.Reader, old int64) (int64, error) {
	v, err := readInt(r)
	if err != nil {
		return 0, err
	}
	if v == old {
		return 0, fmt.Errorf("wire: non-canonical delta: field unchanged at %d", v)
	}
	return v, nil
}

// Switching is the codec for switching.State registers.
type Switching struct{}

// Code implements Codec.
func (Switching) Code() uint8 { return codeSwitching }

// Name implements Codec.
func (Switching) Name() string { return "switching" }

// AppendState implements Codec.
func (Switching) AppendState(b *bits.Builder, s runtime.State) error {
	ss, ok := switching.RegOf(s)
	if !ok {
		return fmt.Errorf("wire: switching codec got %T", s)
	}
	// The raw D and S fields travel even when their presence bits are
	// cleared: the protocol's distance-chain coherence layer reads D
	// through the prune (HasD hides it from the verifier, not from the
	// rules), so eliding hidden fields would change algorithm behavior
	// between the shared-memory and message-passing realizations.
	b.AppendBit(ss.HasD)
	b.AppendBit(ss.HasS)
	for _, v := range []int64{int64(ss.Root), int64(ss.Parent), int64(ss.D), int64(ss.S),
		int64(ss.Sw), int64(ss.SwTarget), int64(ss.Pr), int64(ss.Sub)} {
		if err := appendInt(b, v); err != nil {
			return err
		}
	}
	return nil
}

// DecodeState implements Codec.
func (Switching) DecodeState(r *bits.Reader) (runtime.State, error) {
	var s switching.State
	var err error
	if s.HasD, err = readBit(r); err != nil {
		return nil, err
	}
	if s.HasS, err = readBit(r); err != nil {
		return nil, err
	}
	var f [8]int64
	for i := range f {
		if f[i], err = readInt(r); err != nil {
			return nil, err
		}
	}
	s.Root, s.Parent = graph.NodeID(f[0]), graph.NodeID(f[1])
	s.D, s.S = int(f[2]), int(f[3])
	s.Sw = switching.SwPhase(f[4])
	s.SwTarget = graph.NodeID(f[5])
	s.Pr = switching.PrPhase(f[6])
	s.Sub = switching.SubPhase(f[7])
	return s, nil
}

// AppendDelta implements Codec. The two presence booleans encode as
// flip bits (the mask bit alone carries the change); the eight integer
// fields follow the mask-then-values layout of the spanning codec.
func (Switching) AppendDelta(b *bits.Builder, base, cur runtime.State) error {
	bs, ok := switching.RegOf(base)
	if !ok {
		return fmt.Errorf("wire: switching codec got base %T", base)
	}
	cs, ok := switching.RegOf(cur)
	if !ok {
		return fmt.Errorf("wire: switching codec got %T", cur)
	}
	b.AppendBit(bs.HasD != cs.HasD)
	b.AppendBit(bs.HasS != cs.HasS)
	fields := [...][2]int64{
		{int64(bs.Root), int64(cs.Root)},
		{int64(bs.Parent), int64(cs.Parent)},
		{int64(bs.D), int64(cs.D)},
		{int64(bs.S), int64(cs.S)},
		{int64(bs.Sw), int64(cs.Sw)},
		{int64(bs.SwTarget), int64(cs.SwTarget)},
		{int64(bs.Pr), int64(cs.Pr)},
		{int64(bs.Sub), int64(cs.Sub)},
	}
	for _, f := range fields {
		b.AppendBit(f[0] != f[1])
	}
	for _, f := range fields {
		if f[0] != f[1] {
			if err := appendInt(b, f[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ApplyDelta implements Codec.
func (Switching) ApplyDelta(r *bits.Reader, base runtime.State) (runtime.State, error) {
	s, ok := switching.RegOf(base)
	if !ok {
		return nil, fmt.Errorf("wire: switching codec got base %T", base)
	}
	flipD, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	flipS, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	if flipD {
		s.HasD = !s.HasD
	}
	if flipS {
		s.HasS = !s.HasS
	}
	var mask [8]bool
	for i := range mask {
		if mask[i], err = r.ReadBit(); err != nil {
			return nil, err
		}
	}
	old := [...]int64{int64(s.Root), int64(s.Parent), int64(s.D), int64(s.S),
		int64(s.Sw), int64(s.SwTarget), int64(s.Pr), int64(s.Sub)}
	vals := old
	for i := range mask {
		if mask[i] {
			if vals[i], err = readChanged(r, old[i]); err != nil {
				return nil, err
			}
		}
	}
	s.Root, s.Parent = graph.NodeID(vals[0]), graph.NodeID(vals[1])
	s.D, s.S = int(vals[2]), int(vals[3])
	s.Sw = switching.SwPhase(vals[4])
	s.SwTarget = graph.NodeID(vals[5])
	s.Pr = switching.PrPhase(vals[6])
	s.Sub = switching.SubPhase(vals[7])
	return s, nil
}

// ByCode returns the codec registered under the given frame code.
func ByCode(code uint8) (Codec, bool) {
	switch code {
	case codeSpanning:
		return Spanning{}, true
	case codeSwitching:
		return Switching{}, true
	}
	return nil, false
}

// ForAlgorithm selects the register codec matching an algorithm's state
// type: the spanning substrate uses the spanning codec; the switching
// family (switching, PLS-guided BFS, and the engine-driven MST/MDST,
// which run switching registers) uses the switching codec.
func ForAlgorithm(alg runtime.Algorithm) (Codec, error) {
	switch alg.(type) {
	case spanning.Algorithm:
		return Spanning{}, nil
	case switching.Algorithm:
		return Switching{}, nil
	case bfs.Algorithm:
		return Switching{}, nil
	}
	return nil, fmt.Errorf("wire: no codec for algorithm %q", alg.Name())
}
