// Package wire is the cluster's wire protocol: it serializes a node's
// register state into versioned, checksummed heartbeat frames, and
// routed packets into data frames, so the locally-shared-memory model
// of the paper (Section II-A) can be realized over real links.
//
// The classic shared-memory→message-passing transform has every node
// periodically broadcast its register content to its neighbors; each
// neighbor caches the last received state and evaluates its transition
// function against the cache instead of an atomic register read. The
// transform preserves silence (once registers stop changing, only
// constant-size keep-alive heartbeats flow) and the Θ(log n) space
// bound of the paper: a frame carries one register, encoded with the
// Elias-gamma codes of internal/bits, so the frame size tracks the
// register size within a constant envelope.
//
// Frame layout (byte offsets):
//
//	0  magic "ST" (2 bytes)
//	2  version (1)
//	3  kind (1): heartbeat | data
//	4  alg (1): register codec code (0 for data frames)
//	5  flags (1): bit0 = register present (heartbeats)
//	6  src node identity (8, big-endian)
//	14 seq (8, big-endian): sender's monotone heartbeat counter
//	22 payload length in bits (4, big-endian)
//	26 payload (gamma-coded fields, zero-padded to a byte boundary)
//	.. crc32-IEEE of everything above (4, big-endian)
//
// Decode rejects bad magic, unknown versions and kinds, length
// mismatches, dirty padding, trailing payload bits, and — the fault
// class the cluster's byte-corrupting transport exercises — any frame
// whose checksum does not match: a single flipped bit anywhere in the
// frame is always caught.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/runtime"
)

// Version is the current frame format version.
const Version = 1

// headerLen and trailerLen frame the payload.
const (
	headerLen  = 26
	trailerLen = 4
)

const (
	magic0 = 'S'
	magic1 = 'T'
)

// Kind classifies a frame.
type Kind uint8

// The frame kinds.
const (
	// KindHeartbeat carries the sender's register state to a neighbor.
	KindHeartbeat Kind = 1
	// KindData carries one routed packet hop.
	KindData Kind = 2
)

// Decode failure classes, distinguishable with errors.Is so transport
// stats can attribute drops.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrMagic     = errors.New("wire: bad magic")
	ErrVersion   = errors.New("wire: unsupported version")
	ErrKind      = errors.New("wire: unknown frame kind")
	ErrChecksum  = errors.New("wire: checksum mismatch")
	ErrPayload   = errors.New("wire: corrupt payload")
)

// Packet is the data-plane payload: one routed packet identified by the
// gateway's ID, between its endpoints, carrying its hop count.
type Packet struct {
	ID          uint64
	Origin, Dst graph.NodeID
	Hops        int
}

// Frame is one decoded wire frame.
type Frame struct {
	Kind Kind
	// Alg is the register codec code the payload was encoded with
	// (heartbeats; zero for data frames). Receivers reject frames from a
	// codec other than their own — a cluster misconfiguration guard.
	Alg uint8
	// Src is the sending node.
	Src graph.NodeID
	// Seq is the sender's monotone counter: receivers drop duplicated
	// and reordered-stale heartbeats by accepting only fresher values.
	Seq uint64
	// State is the heartbeat register content; nil encodes an empty
	// register (a node that has not booted its algorithm yet).
	State runtime.State
	// Data is the packet of a data frame.
	Data Packet
	// BaseSeq is a delta frame's anchor (KindDelta): the seq of the
	// self-contained frame the payload is encoded against. BaseSeq ==
	// Seq marks a self-contained frame.
	BaseSeq uint64
	// Base is the encode-side anchor register for a delta frame with
	// BaseSeq < Seq. Decode leaves it nil: the receiver supplies its own
	// cached anchor to ApplyDelta.
	Base runtime.State
	// Q is the termination-detector report carried by heartbeat-class
	// frames (KindHeartbeat, KindDelta): write epoch, subtree-quiet
	// claim with coverage count, and the root's announced epoch.
	Q QuietReport
	// AdminAddr is an advert's ops-plane address (KindAdvert); empty
	// when the advertiser runs no admin server.
	AdminAddr string
	// Neighbors is an advert's neighbor digest (KindAdvert): the
	// strictly-ascending ids the advertiser was configured with.
	Neighbors []graph.NodeID
	// delta parks the undecoded payload of a received delta frame with
	// BaseSeq < Seq, positioned at deltaOff for ApplyDelta.
	delta    bits.String
	deltaOff int
}

// Encode appends the frame's wire form to dst and returns the grown
// slice. The builder is scratch for the payload encoding: it is Reset
// here and may be reused across calls, so a steady-state sender
// allocates only what dst needs to grow.
func Encode(f Frame, c Codec, b *bits.Builder, dst []byte) ([]byte, error) {
	b.Reset()
	var flags byte
	switch f.Kind {
	case KindHeartbeat:
		appendQuiet(b, f.Q)
		if f.State != nil {
			flags |= 1
			if err := c.AppendState(b, f.State); err != nil {
				return dst, err
			}
		}
	case KindData:
		for _, v := range []int64{int64(f.Data.ID), int64(f.Data.Origin), int64(f.Data.Dst), int64(f.Data.Hops)} {
			if err := appendInt(b, v); err != nil {
				return dst, err
			}
		}
	case KindDelta, KindResync, KindAdvert, KindLeave:
		return encodeCompact(f, c, b, dst)
	default:
		return dst, fmt.Errorf("%w: %d", ErrKind, f.Kind)
	}
	base := len(dst)
	dst = append(dst, magic0, magic1, Version, byte(f.Kind), f.Alg, flags)
	dst = binary.BigEndian.AppendUint64(dst, uint64(f.Src))
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(b.Len()))
	dst = b.AppendBytes(dst)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[base:])), nil
}

// Decode parses one frame. The codec decodes heartbeat payloads; it is
// unused for data frames. Every reject path returns a wrapped sentinel
// error (ErrTruncated, ErrMagic, ErrVersion, ErrKind, ErrChecksum,
// ErrPayload).
func Decode(c Codec, data []byte) (Frame, error) {
	f, _, err := DecodeBuf(c, data, nil)
	return f, err
}

// DecodeBuf is Decode with a reusable scratch word slice backing the
// payload bit string, so a steady-state receiver decodes without heap
// allocation. The grown scratch is returned for the next call. Decoded
// registers are value copies and outlive the buffer, but a delta
// frame's parked payload aliases it: ApplyDelta before the next
// DecodeBuf call with the same buffer.
func DecodeBuf(c Codec, data []byte, scratch []uint64) (Frame, []uint64, error) {
	if len(data) > 0 && data[0] == magicCompact {
		return decodeCompact(c, data, scratch)
	}
	var f Frame
	if len(data) < headerLen+trailerLen {
		return f, scratch, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if data[0] != magic0 || data[1] != magic1 {
		return f, scratch, ErrMagic
	}
	if data[2] != Version {
		return f, scratch, fmt.Errorf("%w: %d", ErrVersion, data[2])
	}
	f.Kind = Kind(data[3])
	if f.Kind != KindHeartbeat && f.Kind != KindData {
		return f, scratch, fmt.Errorf("%w: %d", ErrKind, data[3])
	}
	f.Alg = data[4]
	flags := data[5]
	// Unknown flag bits are rejected rather than ignored: decode must be
	// the exact inverse of encode (canonical frames), or a corrupted bit
	// the checksum happened to miss could survive a relay re-encode.
	if flags&^1 != 0 || (f.Kind == KindData && flags != 0) {
		return f, scratch, fmt.Errorf("%w: flags %#x", ErrPayload, flags)
	}
	f.Src = graph.NodeID(binary.BigEndian.Uint64(data[6:14]))
	f.Seq = binary.BigEndian.Uint64(data[14:22])
	payloadBits := int(binary.BigEndian.Uint32(data[22:26]))
	payloadBytes := (payloadBits + 7) / 8
	if len(data) != headerLen+payloadBytes+trailerLen {
		return f, scratch, fmt.Errorf("%w: %d bytes for %d payload bits", ErrTruncated, len(data), payloadBits)
	}
	sum := binary.BigEndian.Uint32(data[len(data)-trailerLen:])
	if crc32.ChecksumIEEE(data[:len(data)-trailerLen]) != sum {
		return f, scratch, ErrChecksum
	}
	payload, scratch, err := bits.FromBytesBuf(scratch, data[headerLen:len(data)-trailerLen], payloadBits)
	if err != nil {
		return f, scratch, fmt.Errorf("%w: %v", ErrPayload, err)
	}
	r := bits.NewReader(payload)
	switch f.Kind {
	case KindHeartbeat:
		q, err := readQuiet(r)
		if err != nil {
			return f, scratch, fmt.Errorf("%w: quiet report: %v", ErrPayload, err)
		}
		f.Q = q
		if flags&1 != 0 {
			s, err := c.DecodeState(r)
			if err != nil {
				return f, scratch, fmt.Errorf("%w: %v", ErrPayload, err)
			}
			f.State = s
		}
	case KindData:
		var fields [4]int64
		for i := range fields {
			v, err := readInt(r)
			if err != nil {
				return f, scratch, fmt.Errorf("%w: data field %d: %v", ErrPayload, i, err)
			}
			fields[i] = v
		}
		f.Data = Packet{
			ID:     uint64(fields[0]),
			Origin: graph.NodeID(fields[1]),
			Dst:    graph.NodeID(fields[2]),
			Hops:   int(fields[3]),
		}
	}
	if r.Remaining() != 0 {
		return f, scratch, fmt.Errorf("%w: %d trailing payload bits", ErrPayload, r.Remaining())
	}
	return f, scratch, nil
}
