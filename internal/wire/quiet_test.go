package wire

import (
	"testing"

	"silentspan/internal/bits"
	"silentspan/internal/spanning"
)

// quietSamples spans the report shapes the detector emits: the
// zero-value (4 bits on the wire), a small active claim, an
// announcement, and epoch values past 32 bits (the Lamport clock never
// wraps).
func quietSamples() []QuietReport {
	return []QuietReport{
		{},
		{Epoch: 3, Sub: true, Count: 7},
		{Epoch: 9, Sub: true, Count: 64, Ann: 9},
		{Epoch: 1 << 40, Sub: false, Count: 0, Ann: 1 << 39},
	}
}

// TestQuietRoundtripHeartbeat: the quiet report rides every classic
// heartbeat — with a register and on the register-less keep-alive.
func TestQuietRoundtripHeartbeat(t *testing.T) {
	var b bits.Builder
	c := Codec(Spanning{})
	st := spanning.State{Root: 3, Parent: 1, Dist: 2}
	for _, q := range quietSamples() {
		for _, withState := range []bool{true, false} {
			f := Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 5, Seq: 11, Q: q}
			if withState {
				f.State = st
			}
			data, err := Encode(f, c, &b, nil)
			if err != nil {
				t.Fatalf("encode %+v: %v", q, err)
			}
			got, err := Decode(c, data)
			if err != nil {
				t.Fatalf("decode %+v: %v", q, err)
			}
			if got.Q != q {
				t.Fatalf("heartbeat quiet report %+v != %+v (state=%v)", got.Q, q, withState)
			}
		}
	}
}

// TestQuietRoundtripDelta: the report rides compact frames too — on a
// self-contained anchor, and on a true delta it must decode *before*
// the parked remainder, so a receiver reads the detector state even
// when it cannot apply the register delta yet.
func TestQuietRoundtripDelta(t *testing.T) {
	var b bits.Builder
	c := Codec(Spanning{})
	base := spanning.State{Root: 3, Parent: 1, Dist: 2}
	cur := spanning.State{Root: 3, Parent: 4, Dist: 3}
	for _, q := range quietSamples() {
		// Anchor (BaseSeq == Seq): self-contained.
		data, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 5, Seq: 12, BaseSeq: 12,
			State: cur, Q: q}, c, &b, nil)
		if err != nil {
			t.Fatalf("encode anchor %+v: %v", q, err)
		}
		got, err := Decode(c, data)
		if err != nil {
			t.Fatalf("decode anchor %+v: %v", q, err)
		}
		if got.Q != q {
			t.Fatalf("anchor quiet report %+v != %+v", got.Q, q)
		}

		// True delta: Q is readable off the decoded frame immediately,
		// and ApplyDelta still reconstructs the register afterwards.
		data, err = Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 5, Seq: 12, BaseSeq: 9,
			Base: base, State: cur, Q: q}, c, &b, nil)
		if err != nil {
			t.Fatalf("encode delta %+v: %v", q, err)
		}
		got, err = Decode(c, data)
		if err != nil {
			t.Fatalf("decode delta %+v: %v", q, err)
		}
		if got.Q != q {
			t.Fatalf("delta quiet report %+v != %+v (before apply)", got.Q, q)
		}
		st, err := ApplyDelta(c, got, base)
		if err != nil {
			t.Fatalf("apply delta %+v: %v", q, err)
		}
		if !st.Equal(cur) {
			t.Fatalf("delta register %v != %v with quiet report %+v", st, cur, q)
		}
	}
}
