package wire

import (
	"bytes"
	"testing"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/switching"
)

// FuzzFrameRoundtrip drives the switching codec — the superset register
// carried by four of the five algorithms — through encode→decode with
// fuzzer-chosen field values, asserting exact state recovery and that
// re-encoding is canonical (byte-identical).
func FuzzFrameRoundtrip(f *testing.F) {
	f.Add(int64(1), int64(0), true, int64(0), true, int64(1), uint8(1), int64(0), uint8(1), uint8(1), uint64(1))
	f.Add(int64(2), int64(5), true, int64(3), false, int64(99), uint8(2), int64(6), uint8(3), uint8(3), uint64(7))
	f.Add(int64(-9), int64(1)<<40, false, int64(-1), true, int64(1)<<50, uint8(255), int64(-1)<<30, uint8(0), uint8(9), uint64(1)<<60)
	f.Fuzz(func(t *testing.T, root, parent int64, hasD bool, d int64, hasS bool, s int64,
		sw uint8, target int64, pr, sub uint8, seq uint64) {
		c := Codec(Switching{})
		st := switching.State{
			Root: graph.NodeID(root), Parent: graph.NodeID(parent),
			HasD: hasD, D: int(d), HasS: hasS, S: int(s),
			Sw: switching.SwPhase(sw), SwTarget: graph.NodeID(target),
			Pr: switching.PrPhase(pr), Sub: switching.SubPhase(sub),
		}
		var b bits.Builder
		in := Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: graph.NodeID(root), Seq: seq, State: st}
		data, err := Encode(in, c, &b, nil)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := Decode(c, data)
		if err != nil {
			t.Fatalf("decode(%x): %v", data, err)
		}
		if out.Seq != seq || out.Src != in.Src {
			t.Fatalf("header mismatch: %+v", out)
		}
		got, ok := out.State.(switching.State)
		if !ok {
			t.Fatalf("decoded %T", out.State)
		}
		if got != st {
			t.Fatalf("state %v != %v", got, st)
		}
		data2, err := Encode(out, c, &b, nil)
		if err != nil || !bytes.Equal(data, data2) {
			t.Fatalf("re-encode not canonical: %x vs %x (%v)", data, data2, err)
		}
	})
}

// FuzzDecodeFrame throws arbitrary bytes at the decoder under both
// codecs: it must never panic, never allocate past the input size, and
// anything it accepts must re-encode to the identical bytes.
func FuzzDecodeFrame(f *testing.F) {
	var b bits.Builder
	seedFrames := []Frame{
		{Kind: KindHeartbeat, Alg: codeSwitching, Src: 3, Seq: 9, State: switching.SelfRoot(3)},
		{Kind: KindHeartbeat, Alg: codeSwitching, Src: 4, Seq: 1},
		{Kind: KindData, Src: 2, Seq: 5, Data: Packet{ID: 7, Origin: 2, Dst: 6, Hops: 3}},
		{Kind: KindDelta, Alg: codeSwitching, Src: 3, Seq: 9, BaseSeq: 9, State: switching.SelfRoot(3)},
		{Kind: KindDelta, Alg: codeSwitching, Src: 3, Seq: 9, BaseSeq: 4,
			Base: switching.SelfRoot(3), State: switching.SelfRoot(3)},
		{Kind: KindResync, Alg: codeSwitching, Src: 8, Seq: 2},
		{Kind: KindAdvert, Alg: codeSwitching, Src: 5, Seq: 3,
			AdminAddr: "127.0.0.1:7070", Neighbors: []graph.NodeID{1, 2, 8}},
		{Kind: KindLeave, Alg: codeSwitching, Src: 5, Seq: 44},
	}
	for _, fr := range seedFrames {
		data, err := Encode(fr, Switching{}, &b, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("ST\x01\x01\x02\x00garbage.........."))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []Codec{Spanning{}, Switching{}} {
			fr, err := Decode(c, data)
			if err != nil {
				continue
			}
			if fr.Kind == KindDelta && fr.BaseSeq < fr.Seq {
				// A non-self-contained delta is only half decoded — the
				// field bits wait for the receiver's anchor — so it cannot
				// re-encode. It must still apply (or reject) without
				// panicking against an arbitrary base.
				if st, err := ApplyDelta(c, fr, switching.SelfRoot(3)); err == nil && st == nil {
					t.Fatalf("ApplyDelta returned no state and no error")
				}
				continue
			}
			re, err := Encode(fr, c, &b, nil)
			if err != nil {
				// A heartbeat whose payload decoded under the wrong codec
				// still re-encodes; an encode failure means Decode built a
				// frame Encode considers foreign — a codec asymmetry bug.
				t.Fatalf("accepted frame failed to re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted frame not canonical: %x vs %x", data, re)
			}
		}
	})
}

// FuzzCorruptionRejected pairs a valid frame with a fuzzer-chosen
// mutation and asserts the mutation never passes the checksum: the
// guarantee the byte-corrupting transport fault leans on.
func FuzzCorruptionRejected(f *testing.F) {
	var b bits.Builder
	c := Codec(Switching{})
	base, err := Encode(Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 11, Seq: 2,
		State: switching.SelfRoot(11)}, c, &b, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(0, byte(1))
	f.Add(5, byte(0x80))
	f.Add(len(base)-1, byte(0xff))
	f.Fuzz(func(t *testing.T, pos int, x byte) {
		if x == 0 || pos < 0 || pos >= len(base) {
			t.Skip()
		}
		mut := append([]byte(nil), base...)
		mut[pos] ^= x
		if _, err := Decode(c, mut); err == nil {
			t.Fatalf("single-byte corruption at %d (^%#x) accepted", pos, x)
		}
	})
}
