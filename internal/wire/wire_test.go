package wire

import (
	"errors"
	"math/rand"
	"testing"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// sampleStates returns representative register contents per codec,
// including sentinel-heavy and adversarial field values.
func sampleStates(c Codec, rng *rand.Rand) []runtime.State {
	switch c.(type) {
	case Spanning:
		out := []runtime.State{
			spanning.State{Root: 1, Parent: trees.None, Dist: 0},
			spanning.State{Root: 3, Parent: 7, Dist: 5},
			spanning.State{Root: 1 << 40, Parent: 9999, Dist: 1 << 30},
		}
		for i := 0; i < 40; i++ {
			out = append(out, spanning.State{
				Root:   graph.NodeID(rng.Int63n(1 << 20)),
				Parent: graph.NodeID(rng.Int63n(1<<20) - 1),
				Dist:   rng.Intn(1 << 16),
			})
		}
		return out
	default:
		out := []runtime.State{
			switching.SelfRoot(4),
			switching.State{Root: 2, Parent: 5, HasD: true, D: 3, HasS: false, S: 99,
				Sw: switching.SwReq, SwTarget: 6, Pr: switching.PrPruned, Sub: switching.SubAck},
		}
		for i := 0; i < 40; i++ {
			out = append(out, switching.State{
				Root:   graph.NodeID(rng.Int63n(1 << 20)),
				Parent: graph.NodeID(rng.Int63n(1<<20) - 1),
				HasD:   rng.Intn(2) == 0, D: rng.Intn(1 << 12),
				HasS: rng.Intn(2) == 0, S: rng.Intn(1 << 12),
				Sw:       switching.SwPhase(rng.Intn(6)),
				SwTarget: graph.NodeID(rng.Intn(64)),
				Pr:       switching.PrPhase(rng.Intn(6)),
				Sub:      switching.SubPhase(rng.Intn(6)),
			})
		}
		return out
	}
}

// TestHeartbeatRoundtrip: every register sample survives encode→decode
// exactly, under both codecs, empty registers included.
func TestHeartbeatRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b bits.Builder
	for _, c := range []Codec{Spanning{}, Switching{}} {
		states := append(sampleStates(c, rng), nil)
		for i, s := range states {
			in := Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 42, Seq: uint64(i), State: s}
			data, err := Encode(in, c, &b, nil)
			if err != nil {
				t.Fatalf("%s state %d: encode: %v", c.Name(), i, err)
			}
			out, err := Decode(c, data)
			if err != nil {
				t.Fatalf("%s state %d: decode: %v", c.Name(), i, err)
			}
			if out.Kind != in.Kind || out.Alg != in.Alg || out.Src != in.Src || out.Seq != in.Seq {
				t.Fatalf("%s state %d: header mismatch: %+v vs %+v", c.Name(), i, out, in)
			}
			switch {
			case s == nil:
				if out.State != nil {
					t.Fatalf("%s state %d: empty register decoded as %v", c.Name(), i, out.State)
				}
			case !out.State.Equal(s):
				t.Fatalf("%s state %d: %v != %v", c.Name(), i, out.State, s)
			}
		}
	}
}

// TestDataRoundtrip: packet frames survive encode→decode.
func TestDataRoundtrip(t *testing.T) {
	var b bits.Builder
	c := Codec(Spanning{})
	in := Frame{Kind: KindData, Src: 9, Seq: 77,
		Data: Packet{ID: 123456, Origin: 3, Dst: 8, Hops: 17}}
	data, err := Encode(in, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(c, data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data != in.Data || out.Src != in.Src || out.Kind != KindData {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

// TestEveryByteFlipRejected: the checksum must catch any single-byte
// corruption anywhere in the frame — the contract the fault-injecting
// transport's byte corrupter relies on.
func TestEveryByteFlipRejected(t *testing.T) {
	var b bits.Builder
	c := Codec(Switching{})
	data, err := Encode(Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 5, Seq: 3,
		State: switching.SelfRoot(5)}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), data...)
			mut[i] ^= flip
			if _, err := Decode(c, mut); err == nil {
				t.Fatalf("byte %d flipped by %#x accepted", i, flip)
			}
		}
	}
}

// TestDecodeRejects: each malformed-frame class maps to its sentinel.
func TestDecodeRejects(t *testing.T) {
	var b bits.Builder
	c := Codec(Spanning{})
	good, err := Encode(Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 1, Seq: 1,
		State: spanning.State{Root: 1, Parent: trees.None}}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", good[:10], ErrTruncated},
		{"magic", mutate(good, 0, 'X'), ErrMagic},
		{"version", mutate(good, 2, 99), ErrVersion},
		{"kind", mutate(good, 3, 77), ErrKind},
		{"crc", mutate(good, len(good)-1, good[len(good)-1]^1), ErrChecksum},
		{"truncated-payload", good[:len(good)-5], ErrTruncated},
	}
	for _, tc := range cases {
		if _, err := Decode(c, tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// A foreign state type must be refused at encode time.
	if _, err := Encode(Frame{Kind: KindHeartbeat, State: switching.SelfRoot(1)}, Spanning{}, &b, nil); err == nil {
		t.Error("spanning codec encoded a switching register")
	}
}

func mutate(data []byte, i int, v byte) []byte {
	out := append([]byte(nil), data...)
	out[i] = v
	return out
}

// TestForAlgorithm: the five certified algorithms all resolve to a
// codec; the codec registry round-trips by code.
func TestForAlgorithm(t *testing.T) {
	for code := uint8(1); code <= 2; code++ {
		c, ok := ByCode(code)
		if !ok || c.Code() != code {
			t.Fatalf("ByCode(%d) = %v, %v", code, c, ok)
		}
	}
	if _, ok := ByCode(9); ok {
		t.Fatal("ByCode(9) resolved")
	}
	if c, err := ForAlgorithm(spanning.Algorithm{}); err != nil || c.Code() != codeSpanning {
		t.Fatalf("spanning: %v %v", c, err)
	}
	if c, err := ForAlgorithm(switching.Algorithm{}); err != nil || c.Code() != codeSwitching {
		t.Fatalf("switching: %v %v", c, err)
	}
}

// TestFrameOverhead: the envelope must stay a small constant over the
// gamma-coded register — the space story of the transform.
func TestFrameOverhead(t *testing.T) {
	var b bits.Builder
	c := Codec(Spanning{})
	s := spanning.State{Root: 1, Parent: 2, Dist: 1}
	data, err := Encode(Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 2, Seq: 1, State: s}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > headerLen+trailerLen+4 {
		t.Fatalf("tiny register frame is %d bytes", len(data))
	}
}
