package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// deltaRoundtrip drives base→cur through encode→decode→ApplyDelta and
// returns the reconstructed register.
func deltaRoundtrip(t *testing.T, c Codec, base, cur runtime.State, seq, baseSeq uint64) runtime.State {
	t.Helper()
	var b bits.Builder
	data, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 7,
		Seq: seq, BaseSeq: baseSeq, Base: base, State: cur}, c, &b, nil)
	if err != nil {
		t.Fatalf("encode delta: %v", err)
	}
	f, err := Decode(c, data)
	if err != nil {
		t.Fatalf("decode delta (%x): %v", data, err)
	}
	if f.Kind != KindDelta || f.Src != 7 || f.Seq != seq || f.BaseSeq != baseSeq {
		t.Fatalf("delta header mismatch: %+v", f)
	}
	st, err := ApplyDelta(c, f, base)
	if err != nil {
		t.Fatalf("apply delta: %v", err)
	}
	return st
}

// TestDeltaRoundtrip: every (base, cur) pair of register samples
// survives delta encode→decode→apply exactly, under both codecs —
// including cur == base, the empty-mask keep-alive.
func TestDeltaRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range []Codec{Spanning{}, Switching{}} {
		states := sampleStates(c, rng)
		for i := 0; i+1 < len(states); i += 2 {
			base, cur := states[i], states[i+1]
			if got := deltaRoundtrip(t, c, base, cur, 9, 4); !got.Equal(cur) {
				t.Fatalf("%s pair %d: %v != %v", c.Name(), i, got, cur)
			}
			if got := deltaRoundtrip(t, c, base, base, 9, 4); !got.Equal(base) {
				t.Fatalf("%s pair %d: keep-alive %v != %v", c.Name(), i, got, base)
			}
		}
	}
}

// TestAnchorRoundtrip: a self-contained delta frame (BaseSeq == Seq)
// carries a full register — or an empty one — through the compact
// envelope, and a resync frame round-trips its header.
func TestAnchorRoundtrip(t *testing.T) {
	var b bits.Builder
	c := Codec(Switching{})
	for _, st := range []runtime.State{switching.SelfRoot(4), nil} {
		data, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 4, Seq: 12, BaseSeq: 12,
			State: st}, c, &b, nil)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Decode(c, data)
		if err != nil {
			t.Fatalf("decode anchor (%x): %v", data, err)
		}
		if f.Kind != KindDelta || f.Src != 4 || f.Seq != 12 || f.BaseSeq != 12 {
			t.Fatalf("anchor header mismatch: %+v", f)
		}
		switch {
		case st == nil:
			if f.State != nil {
				t.Fatalf("empty anchor decoded as %v", f.State)
			}
		case !f.State.Equal(st):
			t.Fatalf("anchor state %v != %v", f.State, st)
		}
	}
	data, err := Encode(Frame{Kind: KindResync, Alg: c.Code(), Src: 9, Seq: 0}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(c, data)
	if err != nil || f.Kind != KindResync || f.Src != 9 || f.Seq != 0 {
		t.Fatalf("resync roundtrip: %+v, %v", f, err)
	}
}

// TestCompactFrameSize: the point of the compact envelope — a quiet
// keep-alive delta must be a fraction of the classic full-state frame.
func TestCompactFrameSize(t *testing.T) {
	var b bits.Builder
	c := Codec(Switching{})
	st := switching.SelfRoot(50000)
	full, err := Encode(Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 50000, Seq: 40, State: st}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 50000, Seq: 40, BaseSeq: 24,
		Base: st, State: st}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep)*2 >= len(full) {
		t.Fatalf("keep-alive delta is %dB vs %dB full — compact envelope lost", len(keep), len(full))
	}
	if len(keep) > 16 {
		t.Fatalf("keep-alive delta is %dB, want ≤16", len(keep))
	}
}

// TestEveryByteFlipRejectedCompact: single-byte corruption never
// survives the compact frames either — keep-alive, changeful delta,
// and resync.
func TestEveryByteFlipRejectedCompact(t *testing.T) {
	var b bits.Builder
	c := Codec(Switching{})
	base := switching.SelfRoot(5)
	cur := switching.State{Root: 2, Parent: 5, HasD: true, D: 3, S: 99,
		Sw: switching.SwReq, SwTarget: 6, Pr: switching.PrPruned, Sub: switching.SubAck}
	frames := []Frame{
		{Kind: KindDelta, Alg: c.Code(), Src: 5, Seq: 33, BaseSeq: 32, Base: base, State: base},
		{Kind: KindDelta, Alg: c.Code(), Src: 5, Seq: 33, BaseSeq: 32, Base: base, State: cur},
		{Kind: KindDelta, Alg: c.Code(), Src: 5, Seq: 33, BaseSeq: 33, State: cur},
		{Kind: KindResync, Alg: c.Code(), Src: 5, Seq: 31},
	}
	for fi, fr := range frames {
		data, err := Encode(fr, c, &b, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			for _, flip := range []byte{0x01, 0x80, 0xff} {
				mut := append([]byte(nil), data...)
				mut[i] ^= flip
				f, err := Decode(c, mut)
				if err == nil && f.Kind == KindDelta && f.BaseSeq < f.Seq {
					// The field bits are not validated until application.
					_, err = ApplyDelta(c, f, base)
				}
				if err == nil {
					t.Fatalf("frame %d: byte %d flipped by %#x accepted", fi, i, flip)
				}
			}
		}
	}
}

// compactMutate rebuilds a compact frame with mutated pre-CRC bytes and
// a recomputed checksum, so structural rejects are reachable past the
// CRC gate.
func compactMutate(data []byte, mut func([]byte) []byte) []byte {
	body := append([]byte(nil), data[:len(data)-trailerLen]...)
	body = mut(body)
	return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// TestCompactDecodeRejects: each malformed compact frame class maps to
// its sentinel, even with a valid checksum.
func TestCompactDecodeRejects(t *testing.T) {
	var b bits.Builder
	c := Codec(Spanning{})
	anchor := spanning.State{Root: 1, Parent: trees.None, Dist: 0}
	good, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 3, Seq: 8, BaseSeq: 8,
		State: anchor}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	resync, err := Encode(Frame{Kind: KindResync, Alg: c.Code(), Src: 3, Seq: 8}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short", good[:compactHeaderLen+trailerLen-1], ErrTruncated},
		{"version", compactMutate(good, func(b []byte) []byte { b[1] = 9<<4 | byte(KindDelta); return b }), ErrVersion},
		{"kind", compactMutate(good, func(b []byte) []byte { b[1] = Version<<4 | 0xe; return b }), ErrKind},
		{"crc", mutate(good, len(good)-1, good[len(good)-1]^1), ErrChecksum},
		{"padding-byte", compactMutate(resync, func(b []byte) []byte { return append(b, 0) }), ErrPayload},
		{"dirty-padding", compactMutate(resync, func(b []byte) []byte { b[len(b)-1] |= 1; return b }), ErrPayload},
		{"base-before-zero", func() []byte {
			// Handcraft seq=0 with base distance 2 → base seq would be -2.
			var pb bits.Builder
			pb.AppendGamma(3) // src
			pb.AppendGamma(1) // seq+1 = 1 → seq 0
			pb.AppendGamma(3) // dist+1 = 3 → base 2 before seq 0
			body := pb.AppendBytes([]byte{magicCompact, Version<<4 | byte(KindDelta), c.Code()})
			return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
		}(), ErrPayload},
	}
	for _, tc := range cases {
		if _, err := Decode(c, tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// Encoding guards: negative src, base ahead of seq, missing base.
	if _, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 0, Seq: 1, BaseSeq: 1, State: anchor}, c, &b, nil); err == nil {
		t.Error("src 0 encoded")
	}
	if _, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 3, Seq: 1, BaseSeq: 2, Base: anchor, State: anchor}, c, &b, nil); err == nil {
		t.Error("base ahead of seq encoded")
	}
	if _, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 3, Seq: 2, BaseSeq: 1, State: anchor}, c, &b, nil); err == nil {
		t.Error("delta without base encoded")
	}
}

// TestApplyDeltaAdversarial: application against the wrong base — the
// receiver-side hazard the anchor protocol exists to prevent — is
// either detected or yields a state that a canonical re-encode would
// expose; self-contained frames and nil bases are refused outright.
func TestApplyDeltaAdversarial(t *testing.T) {
	var b bits.Builder
	c := Codec(Spanning{})
	base := spanning.State{Root: 1, Parent: trees.None, Dist: 0}
	cur := spanning.State{Root: 2, Parent: 1, Dist: 1}
	data, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 3, Seq: 8, BaseSeq: 5,
		Base: base, State: cur}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(c, data)
	if err != nil {
		t.Fatal(err)
	}
	// Applying against cur itself: every "changed" field now matches the
	// base — the non-canonical reject fires.
	if _, err := ApplyDelta(c, f, cur); err == nil {
		t.Error("delta applied against its own target accepted")
	}
	// Nil base and wrong-typed base are refused.
	if _, err := ApplyDelta(c, f, nil); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := ApplyDelta(c, f, switching.SelfRoot(1)); err == nil {
		t.Error("foreign base type accepted")
	}
	// A self-contained frame has nothing to apply.
	anchorData, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 3, Seq: 8, BaseSeq: 8,
		State: cur}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	af, err := Decode(c, anchorData)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyDelta(c, af, base); err == nil {
		t.Error("ApplyDelta on self-contained frame accepted")
	}
	// The correct base still works after the failed attempts (the parked
	// payload is not consumed destructively).
	st, err := ApplyDelta(c, f, base)
	if err != nil || !st.Equal(cur) {
		t.Fatalf("reapply after failures: %v, %v", st, err)
	}
}

// TestDecodeBufReuse: repeated decodes through one scratch buffer keep
// decoding correctly — the reuse must not leak state between frames.
func TestDecodeBufReuse(t *testing.T) {
	var b bits.Builder
	c := Codec(Switching{})
	st := switching.SelfRoot(6)
	full, err := Encode(Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 6, Seq: 2, State: st}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 6, Seq: 9, BaseSeq: 3,
		Base: st, State: st}, c, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scratch []uint64
	for i := 0; i < 3; i++ {
		var f Frame
		f, scratch, err = DecodeBuf(c, full, scratch)
		if err != nil || !f.State.Equal(st) {
			t.Fatalf("full decode %d: %+v, %v", i, f, err)
		}
		f, scratch, err = DecodeBuf(c, keep, scratch)
		if err != nil {
			t.Fatalf("keep decode %d: %v", i, err)
		}
		got, err := ApplyDelta(c, f, st)
		if err != nil || !got.Equal(st) {
			t.Fatalf("keep apply %d: %v, %v", i, got, err)
		}
	}
}

// FuzzDeltaCodec drives the delta codec with fuzzer-chosen base and
// current registers: the delta must apply back to exactly the current
// state, and applying it against a perturbed base must never panic.
func FuzzDeltaCodec(f *testing.F) {
	f.Add(int64(1), int64(0), int64(0), int64(2), int64(1), int64(1), uint64(9), uint64(4))
	f.Add(int64(5), int64(5), int64(7), int64(5), int64(5), int64(7), uint64(3), uint64(2))
	f.Add(int64(-1), int64(1)<<40, int64(9), int64(8), int64(-7), int64(0), uint64(100), uint64(1))
	f.Fuzz(func(t *testing.T, br, bp, bd, cr, cp, cd int64, seq, dist uint64) {
		if seq == 0 || dist == 0 || dist > seq {
			t.Skip()
		}
		c := Codec(Spanning{})
		base := spanning.State{Root: graph.NodeID(br), Parent: graph.NodeID(bp), Dist: int(bd)}
		cur := spanning.State{Root: graph.NodeID(cr), Parent: graph.NodeID(cp), Dist: int(cd)}
		var b bits.Builder
		data, err := Encode(Frame{Kind: KindDelta, Alg: c.Code(), Src: 7,
			Seq: seq, BaseSeq: seq - dist, Base: base, State: cur}, c, &b, nil)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		fr, err := Decode(c, data)
		if err != nil {
			t.Fatalf("decode(%x): %v", data, err)
		}
		if fr.Seq != seq || fr.BaseSeq != seq-dist {
			t.Fatalf("anchor header mismatch: %+v", fr)
		}
		got, err := ApplyDelta(c, fr, base)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if !got.Equal(cur) {
			t.Fatalf("applied %v != %v", got, cur)
		}
		// Wrong base: outcome may be an error or a divergent state, but
		// never a panic, and the right base must still apply afterwards.
		wrong := spanning.State{Root: base.Root + 1, Parent: base.Parent, Dist: base.Dist}
		_, _ = ApplyDelta(c, fr, wrong)
		if again, err := ApplyDelta(c, fr, base); err != nil || !again.Equal(cur) {
			t.Fatalf("reapply: %v, %v", again, err)
		}
	})
}

// BenchmarkFrameEncode measures steady-state heartbeat encoding into a
// reused buffer: the per-tick hot path of every node.
func BenchmarkFrameEncode(b *testing.B) {
	var bb bits.Builder
	c := Codec(Switching{})
	st := switching.SelfRoot(50000)
	fr := Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 50000, Seq: 3, State: st}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(fr, c, &bb, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameDecode measures steady-state heartbeat decoding through
// a reused scratch buffer.
func BenchmarkFrameDecode(b *testing.B) {
	var bb bits.Builder
	c := Codec(Switching{})
	data, err := Encode(Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 50000, Seq: 3,
		State: switching.SelfRoot(50000)}, c, &bb, nil)
	if err != nil {
		b.Fatal(err)
	}
	var scratch []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, scratch, err = DecodeBuf(c, data, scratch)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaKeepalive measures the quiet-cluster hot path: encode
// and decode+apply of an empty-mask keep-alive delta.
func BenchmarkDeltaKeepalive(b *testing.B) {
	var bb bits.Builder
	c := Codec(Switching{})
	st := switching.SelfRoot(50000)
	fr := Frame{Kind: KindDelta, Alg: c.Code(), Src: 50000, Seq: 9, BaseSeq: 3, Base: st, State: st}
	var buf []byte
	var scratch []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(fr, c, &bb, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		f, sc, err := DecodeBuf(c, buf, scratch)
		if err != nil {
			b.Fatal(err)
		}
		scratch = sc
		if _, err := ApplyDelta(c, f, st); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeAllocFree: a warm encoder performs zero heap allocations
// per frame — the fix for E13's throughput sag at scale.
func TestEncodeAllocFree(t *testing.T) {
	var bb bits.Builder
	c := Codec(Switching{})
	st := switching.SelfRoot(50000)
	fr := Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 50000, Seq: 3, State: st}
	buf := make([]byte, 0, 256)
	// Warm the builder.
	if _, err := Encode(fr, c, &bb, buf[:0]); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Encode(fr, c, &bb, buf[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm encode allocates %.1f times per frame", allocs)
	}
}

// TestDecodeBufAllocBound: a warm decoder's only steady allocations are
// the reader and the decoded register's interface box — the payload
// words no longer allocate per frame.
func TestDecodeBufAllocBound(t *testing.T) {
	var bb bits.Builder
	c := Codec(Switching{})
	data, err := Encode(Frame{Kind: KindHeartbeat, Alg: c.Code(), Src: 50000, Seq: 3,
		State: switching.SelfRoot(50000)}, c, &bb, nil)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]uint64, 8)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		_, scratch, err = DecodeBuf(c, data, scratch)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("warm decode allocates %.1f times per frame, want ≤2", allocs)
	}
}
