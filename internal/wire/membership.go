package wire

import (
	"fmt"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
)

// Membership frames: the discovery/lifecycle leg of the compact 0xA7
// family. Live churn needs two control messages beyond heartbeats — a
// joining node announcing itself and a leaving node saying goodbye —
// and both ride the same header/CRC envelope as KindDelta/KindResync,
// so every guarantee the delta family certifies (version gate, whole-
// frame checksum, canonical zero-padding, exact-inverse decode) holds
// for lifecycle traffic too.
//
// KindAdvert payload (after the shared gamma(src), gamma(seq+1)):
//
//	gamma(len(addr)+1)   admin-address byte length; 0 ⇒ no ops plane
//	addr bytes           8 bits each, MSB-first
//	gamma(count+1)       neighbor-digest entry count; 0 ⇒ no digest
//	gamma(id₁)           first neighbor id (ids are positive)
//	gamma(idᵢ−idᵢ₋₁)     remaining ids, strictly-ascending delta code
//
// The digest lists who the advertiser believes its neighbors are.
// Receivers use it as a sanity gate, never as a membership source: a
// node's neighbor rows come from the coordinator's graph alone, so a
// corrupted or forged advert can refresh per-neighbor caches at worst
// — it can never create a phantom member. Seq carries the advertiser's
// opening heartbeat counter (its seq floor), letting receivers pin
// their duplicate filter above any frames a previous incarnation of
// the same id left in flight.
//
// KindLeave carries only the shared src/seq prefix: a goodbye is pure
// identity. Receivers treat it as an eviction hint for the sender's
// cached register, anchor, and resync state; a lost goodbye degrades
// to the staleness TTL, never to wrong state.
const (
	// KindAdvert announces a (re)joining node: identity, admin address,
	// and a digest of the neighbors it was configured with.
	KindAdvert Kind = 5
	// KindLeave is a cooperative goodbye broadcast on Cluster.Leave.
	KindLeave Kind = 6
)

// Decode-side caps: lengths are read before their payload, so a
// corrupted-but-CRC-colliding length must not drive allocation.
const (
	maxAdvertAddr   = 255
	maxAdvertDigest = 1 << 12
)

// appendAdvert writes the advert-specific payload fields.
func appendAdvert(b *bits.Builder, f Frame) error {
	if len(f.AdminAddr) > maxAdvertAddr {
		return fmt.Errorf("wire: advert admin addr %d bytes exceeds %d", len(f.AdminAddr), maxAdvertAddr)
	}
	b.AppendGamma(uint64(len(f.AdminAddr)) + 1)
	for i := 0; i < len(f.AdminAddr); i++ {
		ch := f.AdminAddr[i]
		for bit := 7; bit >= 0; bit-- {
			b.AppendBit(ch>>uint(bit)&1 == 1)
		}
	}
	if len(f.Neighbors) > maxAdvertDigest {
		return fmt.Errorf("wire: advert digest %d entries exceeds %d", len(f.Neighbors), maxAdvertDigest)
	}
	b.AppendGamma(uint64(len(f.Neighbors)) + 1)
	prev := graph.NodeID(0)
	for _, id := range f.Neighbors {
		if id <= prev {
			return fmt.Errorf("wire: advert digest not strictly ascending at %d", id)
		}
		b.AppendGamma(uint64(id - prev))
		prev = id
	}
	return nil
}

// readAdvert parses the advert-specific payload fields into f. The
// delta code makes a decoded digest strictly ascending and positive by
// construction, so accepted adverts re-encode canonically.
func readAdvert(r *bits.Reader, f *Frame) error {
	n1, err := bits.ReadGamma(r)
	if err != nil {
		return fmt.Errorf("%w: advert addr len: %v", ErrPayload, err)
	}
	n := n1 - 1
	if n > maxAdvertAddr {
		return fmt.Errorf("%w: advert addr %d bytes exceeds %d", ErrPayload, n, maxAdvertAddr)
	}
	if n > 0 {
		buf := make([]byte, n)
		for i := range buf {
			var ch byte
			for bit := 0; bit < 8; bit++ {
				set, err := r.ReadBit()
				if err != nil {
					return fmt.Errorf("%w: advert addr: %v", ErrPayload, err)
				}
				ch <<= 1
				if set {
					ch |= 1
				}
			}
			buf[i] = ch
		}
		f.AdminAddr = string(buf)
	}
	k1, err := bits.ReadGamma(r)
	if err != nil {
		return fmt.Errorf("%w: advert digest count: %v", ErrPayload, err)
	}
	k := k1 - 1
	if k > maxAdvertDigest {
		return fmt.Errorf("%w: advert digest %d entries exceeds %d", ErrPayload, k, maxAdvertDigest)
	}
	if k > 0 {
		ids := make([]graph.NodeID, k)
		prev := uint64(0)
		for i := range ids {
			d, err := bits.ReadGamma(r)
			if err != nil {
				return fmt.Errorf("%w: advert digest: %v", ErrPayload, err)
			}
			prev += d
			ids[i] = graph.NodeID(prev)
			if ids[i] < 1 || uint64(ids[i]) != prev {
				return fmt.Errorf("%w: advert digest id overflow", ErrPayload)
			}
		}
		f.Neighbors = ids
	}
	return nil
}
