package graph

// UnionFind is a disjoint-set forest over node identities with union by
// rank and path compression. It backs the sequential Kruskal reference
// implementation and the virtual Borůvka fragment computation of
// Section VI of the paper.
type UnionFind struct {
	parent map[NodeID]NodeID
	rank   map[NodeID]int
	sets   int
}

// NewUnionFind returns a union-find where every given node is a singleton.
func NewUnionFind(nodes []NodeID) *UnionFind {
	uf := &UnionFind{
		parent: make(map[NodeID]NodeID, len(nodes)),
		rank:   make(map[NodeID]int, len(nodes)),
		sets:   len(nodes),
	}
	for _, v := range nodes {
		uf.parent[v] = v
	}
	return uf
}

// Find returns the representative of v's set.
func (uf *UnionFind) Find(v NodeID) NodeID {
	root := v
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for uf.parent[v] != root {
		uf.parent[v], v = root, uf.parent[v]
	}
	return root
}

// Union merges the sets of u and v; it reports whether a merge happened
// (false if they were already in the same set).
func (uf *UnionFind) Union(u, v NodeID) bool {
	ru, rv := uf.Find(u), uf.Find(v)
	if ru == rv {
		return false
	}
	if uf.rank[ru] < uf.rank[rv] {
		ru, rv = rv, ru
	}
	uf.parent[rv] = ru
	if uf.rank[ru] == uf.rank[rv] {
		uf.rank[ru]++
	}
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Same reports whether u and v are in the same set.
func (uf *UnionFind) Same(u, v NodeID) bool { return uf.Find(u) == uf.Find(v) }
