package graph

import (
	"math/rand"
	"slices"
	"testing"
)

func TestDenseMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(60, 0.1, rng)
	d := g.Dense()
	if d.N() != g.N() {
		t.Fatalf("dense has %d nodes, graph %d", d.N(), g.N())
	}
	if !slices.IsSorted(d.IDs()) {
		t.Fatal("dense ids not sorted")
	}
	for i := 0; i < d.N(); i++ {
		v := d.ID(i)
		if j, ok := d.IndexOf(v); !ok || j != i {
			t.Fatalf("IndexOf(ID(%d)) = %d,%v", i, j, ok)
		}
		if got, want := d.NeighborIDs(i), g.NeighborsShared(v); !slices.Equal(got, want) {
			t.Fatalf("node %d: dense neighbors %v, graph %v", v, got, want)
		}
		if d.Degree(i) != g.Degree(v) {
			t.Fatalf("node %d: dense degree %d, graph %d", v, d.Degree(i), g.Degree(v))
		}
		idxs := d.NeighborIndices(i)
		wts := d.Weights(i)
		for k, u := range d.NeighborIDs(i) {
			if d.ID(int(idxs[k])) != u {
				t.Fatalf("node %d: neighbor index %d resolves to %d, want %d",
					v, idxs[k], d.ID(int(idxs[k])), u)
			}
			if w, _ := g.EdgeWeight(v, u); w != wts[k] {
				t.Fatalf("edge {%d,%d}: dense weight %d, graph %d", v, u, wts[k], w)
			}
		}
	}
	if _, ok := d.IndexOf(NodeID(10_000)); ok {
		t.Fatal("IndexOf accepted a non-node")
	}
}

func TestDenseCacheInvalidation(t *testing.T) {
	g := New()
	g.MustAddEdge(1, 2, 10)
	d1 := g.Dense()
	if d1 != g.Dense() {
		t.Fatal("snapshot not cached between mutations")
	}
	g.MustAddEdge(2, 3, 11)
	d2 := g.Dense()
	if d1 == d2 {
		t.Fatal("snapshot not invalidated by AddEdge")
	}
	if d1.N() != 2 || d2.N() != 3 {
		t.Fatalf("snapshots sized %d and %d, want 2 and 3", d1.N(), d2.N())
	}
	// The old snapshot stays internally consistent.
	if i, ok := d1.IndexOf(2); !ok || !slices.Equal(d1.NeighborIDs(i), []NodeID{1}) {
		t.Fatal("stale snapshot corrupted by later mutation")
	}
	g.AddNode(4)
	if g.Dense() == d2 {
		t.Fatal("snapshot not invalidated by AddNode")
	}
}
