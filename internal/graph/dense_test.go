package graph

import (
	"math/rand"
	"slices"
	"testing"
)

func TestDenseMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(60, 0.1, rng)
	d := g.Dense()
	if d.N() != g.N() {
		t.Fatalf("dense has %d nodes, graph %d", d.N(), g.N())
	}
	if !slices.IsSorted(d.IDs()) {
		t.Fatal("dense ids not sorted")
	}
	for i := 0; i < d.N(); i++ {
		v := d.ID(i)
		if j, ok := d.IndexOf(v); !ok || j != i {
			t.Fatalf("IndexOf(ID(%d)) = %d,%v", i, j, ok)
		}
		if got, want := d.NeighborIDs(i), g.NeighborsShared(v); !slices.Equal(got, want) {
			t.Fatalf("node %d: dense neighbors %v, graph %v", v, got, want)
		}
		if d.Degree(i) != g.Degree(v) {
			t.Fatalf("node %d: dense degree %d, graph %d", v, d.Degree(i), g.Degree(v))
		}
		idxs := d.NeighborIndices(i)
		wts := d.Weights(i)
		for k, u := range d.NeighborIDs(i) {
			if d.ID(int(idxs[k])) != u {
				t.Fatalf("node %d: neighbor index %d resolves to %d, want %d",
					v, idxs[k], d.ID(int(idxs[k])), u)
			}
			if w, _ := g.EdgeWeight(v, u); w != wts[k] {
				t.Fatalf("edge {%d,%d}: dense weight %d, graph %d", v, u, wts[k], w)
			}
		}
	}
	if _, ok := d.IndexOf(NodeID(10_000)); ok {
		t.Fatal("IndexOf accepted a non-node")
	}
}

// checkDenseMatches verifies that d mirrors g exactly: same live node
// set, same adjacency rows (identities, weights), and self-consistent
// slot cross-references.
func checkDenseMatches(t *testing.T, g *Graph, d *Dense) {
	t.Helper()
	if d.N() != g.N() {
		t.Fatalf("dense has %d live nodes, graph %d", d.N(), g.N())
	}
	live := 0
	for i := 0; i < d.Slots(); i++ {
		if !d.LiveAt(i) {
			if deg := d.Degree(i); deg != 0 {
				t.Fatalf("vacated slot %d has degree %d", i, deg)
			}
			continue
		}
		live++
		v := d.ID(i)
		if !g.HasNode(v) {
			t.Fatalf("slot %d holds %d, not a graph node", i, v)
		}
		if j, ok := d.IndexOf(v); !ok || j != i {
			t.Fatalf("IndexOf(%d) = %d,%v, want %d", v, j, ok, i)
		}
		if got, want := d.NeighborIDs(i), g.NeighborsShared(v); !slices.Equal(got, want) {
			t.Fatalf("node %d: dense neighbors %v, graph %v", v, got, want)
		}
		idxs := d.NeighborIndices(i)
		wts := d.Weights(i)
		for k, u := range d.NeighborIDs(i) {
			if d.ID(int(idxs[k])) != u {
				t.Fatalf("node %d: neighbor slot %d resolves to %d, want %d",
					v, idxs[k], d.ID(int(idxs[k])), u)
			}
			if w, _ := g.EdgeWeight(v, u); w != wts[k] {
				t.Fatalf("edge {%d,%d}: dense weight %d, graph %d", v, u, wts[k], w)
			}
		}
	}
	if live != g.N() {
		t.Fatalf("%d live slots, graph has %d nodes", live, g.N())
	}
}

func TestDenseLiveMaintenance(t *testing.T) {
	g := New()
	g.MustAddEdge(1, 2, 10)
	d := g.Dense()
	if d != g.Dense() {
		t.Fatal("dense not cached between calls")
	}
	if d.Epoch() != 0 || !d.Sorted() {
		t.Fatal("fresh dense should be epoch 0 and sorted")
	}
	g.MustAddEdge(2, 3, 11)
	if g.Dense() != d {
		t.Fatal("AddEdge must maintain the dense layout in place, not invalidate it")
	}
	if d.Epoch() == 0 {
		t.Fatal("structural mutation did not bump the epoch")
	}
	checkDenseMatches(t, g, d)

	// Weight updates patch in place without a structural epoch bump.
	e := d.Epoch()
	if err := g.UpdateEdgeWeight(2, 3, 99); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != e {
		t.Fatal("weight update must not bump the structural epoch")
	}
	if i, _ := d.IndexOf(2); d.Weights(i)[slices.Index(d.NeighborIDs(i), NodeID(3))] != 99 {
		t.Fatal("weight update not visible through the dense layout")
	}

	// Node removal vacates the slot; a later join reuses it.
	slot3, _ := d.IndexOf(3)
	if err := g.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	if d.Sorted() {
		t.Fatal("a vacated slot must clear the sorted flag")
	}
	checkDenseMatches(t, g, d)
	if _, ok := d.IndexOf(3); ok {
		t.Fatal("removed node still resolvable")
	}
	g.AddNode(7)
	if i, ok := d.IndexOf(7); !ok || i != slot3 {
		t.Fatalf("new node got slot %d,%v; want reuse of vacated slot %d", i, ok, slot3)
	}
	if d.Slots() != 3 {
		t.Fatalf("slot space grew to %d despite the free slot", d.Slots())
	}
	g.MustAddEdge(7, 1, 12)
	checkDenseMatches(t, g, d)
}

func TestDenseChurnRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomConnected(40, 0.12, rng)
	d := g.Dense()
	nextID := NodeID(1000)
	nextW := Weight(1 << 20)
	for step := 0; step < 3000; step++ {
		nodes := g.Nodes()
		switch op := rng.Intn(10); {
		case op < 4: // add edge between existing nodes
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, nextW)
				nextW++
			}
		case op < 8: // remove a random edge
			edges := g.Edges()
			if len(edges) > 0 {
				e := edges[rng.Intn(len(edges))]
				if err := g.RemoveEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
			}
		case op < 9: // leave
			if len(nodes) > 2 {
				if err := g.RemoveNode(nodes[rng.Intn(len(nodes))]); err != nil {
					t.Fatal(err)
				}
			}
		default: // join with one edge
			g.AddNode(nextID)
			g.MustAddEdge(nextID, nodes[rng.Intn(len(nodes))], nextW)
			nextID++
			nextW++
		}
		if step%250 == 0 {
			checkDenseMatches(t, g, d)
		}
	}
	checkDenseMatches(t, g, d)
	// Force a coalesce and re-verify: slot assignment must be preserved.
	type slotID struct {
		slot int
		id   NodeID
	}
	var before []slotID
	for i := 0; i < d.Slots(); i++ {
		before = append(before, slotID{i, d.ID(i)})
	}
	d.Coalesce()
	if d.OverlayArcs() != 0 {
		t.Fatal("coalesce left overlay arcs behind")
	}
	for _, s := range before {
		if d.ID(s.slot) != s.id {
			t.Fatalf("coalesce moved slot %d: %d -> %d", s.slot, s.id, d.ID(s.slot))
		}
	}
	checkDenseMatches(t, g, d)
	if g.Connected() != g.Clone().Connected() {
		t.Fatal("dense-backed Connected disagrees with a fresh clone")
	}
}
