package graph

import "slices"

// Dense is an immutable, index-addressed snapshot of a graph: node
// identities are mapped once to the contiguous indices 0..n-1 (in
// increasing ID order) and the adjacency is laid out in CSR form —
// one shared arc array per field, sliced per node. It exists for the
// hot layers above the graph (the simulation engine's register file,
// the router's forwarding loop), where per-call maps and defensive
// copies dominate the profile: every accessor below returns shared
// read-only slices and performs no allocation.
//
// A Dense is a snapshot: it reflects the graph at the time Dense() was
// called and is detached from later mutations (Graph.Dense caches and
// invalidates on AddNode/AddEdge). Indices are stable only within one
// snapshot.
type Dense struct {
	ids    []NodeID // ids[i] is the identity of index i; sorted ascending
	off    []int32  // CSR offsets: arcs of index i live in [off[i], off[i+1])
	nbrIDs []NodeID // neighbor identities, sorted ascending per node
	nbrIdx []int32  // dense indices parallel to nbrIDs
	wts    []Weight // incident edge weights parallel to nbrIDs
}

// Dense returns the dense snapshot of g, building it on first use and
// caching it until the next mutation. The returned value and every
// slice reachable from it are shared and read-only.
func (g *Graph) Dense() *Dense {
	if g.dense != nil {
		return g.dense
	}
	n := len(g.nodes)
	d := &Dense{
		ids: slices.Clone(g.nodes), // detach from in-place inserts
		off: make([]int32, n+1),
	}
	arcs := 0
	for _, v := range g.nodes {
		arcs += len(g.nbr[v])
	}
	d.nbrIDs = make([]NodeID, 0, arcs)
	d.nbrIdx = make([]int32, 0, arcs)
	d.wts = make([]Weight, 0, arcs)
	for i, v := range g.nodes {
		for _, u := range g.nbr[v] {
			j, _ := slices.BinarySearch(g.nodes, u)
			d.nbrIDs = append(d.nbrIDs, u)
			d.nbrIdx = append(d.nbrIdx, int32(j))
			d.wts = append(d.wts, g.adj[v][u])
		}
		d.off[i+1] = int32(len(d.nbrIDs))
	}
	g.dense = d
	return d
}

// setWeight patches the arc u->v's weight in place. Callers (only
// Graph.UpdateEdgeWeight) keep the graph's own adjacency in sync, so
// the snapshot never diverges from the graph it mirrors.
func (d *Dense) setWeight(u, v NodeID, w Weight) {
	i, ok := d.IndexOf(u)
	if !ok {
		return
	}
	nbrs := d.NeighborIDs(i)
	j, ok := slices.BinarySearch(nbrs, v)
	if !ok {
		return
	}
	d.wts[int(d.off[i])+j] = w
}

// N returns the number of nodes in the snapshot.
func (d *Dense) N() int { return len(d.ids) }

// IDs returns the identities in increasing order, indexed by dense
// index. The slice is shared and read-only.
func (d *Dense) IDs() []NodeID { return d.ids }

// ID returns the identity of dense index i.
func (d *Dense) ID(i int) NodeID { return d.ids[i] }

// IndexOf returns the dense index of identity v; ok is false if v is
// not a node of the snapshot.
func (d *Dense) IndexOf(v NodeID) (int, bool) {
	return slices.BinarySearch(d.ids, v)
}

// Degree returns the degree of dense index i.
func (d *Dense) Degree(i int) int { return int(d.off[i+1] - d.off[i]) }

// NeighborIDs returns the neighbor identities of dense index i in
// increasing order. The slice is shared and read-only.
func (d *Dense) NeighborIDs(i int) []NodeID { return d.nbrIDs[d.off[i]:d.off[i+1]] }

// NeighborIndices returns the dense indices of the neighbors of index
// i, parallel to NeighborIDs(i) (and therefore ascending). The slice is
// shared and read-only.
func (d *Dense) NeighborIndices(i int) []int32 { return d.nbrIdx[d.off[i]:d.off[i+1]] }

// Weights returns the incident edge weights of dense index i, parallel
// to NeighborIDs(i). The slice is shared and read-only.
func (d *Dense) Weights(i int) []Weight { return d.wts[d.off[i]:d.off[i+1]] }
