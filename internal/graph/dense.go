package graph

import "slices"

// NoNode marks a vacated slot in a dense index space: the identity of a
// node that has been removed. Real identities are drawn from {1..n^c}
// (strictly positive), so the sentinel can never collide.
const NoNode NodeID = -1

// Dense is an index-addressed representation of a graph: node
// identities are mapped to contiguous slots 0..Slots()-1 and the
// adjacency is laid out in CSR form — one shared arc array per field,
// sliced per slot. It exists for the hot layers above the graph (the
// simulation engine's register file, the router's forwarding loop),
// where per-call maps and defensive copies dominate the profile: every
// accessor below returns shared read-only slices and performs no
// allocation.
//
// A Dense is live: Graph mutators keep it in sync incrementally through
// an epoch-stamped patch overlay. Structural mutations never move
// existing slots — a removed node vacates its slot (ids[slot] becomes
// NoNode) and a later AddNode reuses it — so index-addressed layers
// (register files, labelings, routers) stay valid across churn as long
// as they re-check liveness. Mutated adjacency rows are materialized as
// copy-on-write overlay rows; when the overlay exceeds a density
// threshold it is coalesced back into a full CSR rebuild (slot
// assignment preserved). Every structural mutation bumps Epoch, so
// layers holding derived structures can detect staleness exactly.
type Dense struct {
	ids    []NodeID // ids[i] is the identity of slot i; NoNode marks holes
	off    []int32  // CSR offsets: base arcs of slot i live in [off[i], off[i+1])
	nbrIDs []NodeID // neighbor identities, sorted ascending per slot
	nbrIdx []int32  // dense slots parallel to nbrIDs
	wts    []Weight // incident edge weights parallel to nbrIDs

	// Mutation overlay. All nil/zero until the first structural
	// mutation, so a never-churned Dense pays nothing.
	epoch     uint64           // bumped on every structural mutation
	nodeEpoch uint64           // bumped only when the slot assignment changes
	live      int              // number of live (non-hole) slots
	sorted    bool             // ids ascending with no holes: binary-search mode
	idx       map[NodeID]int32 // identity -> slot; maintained once churn starts
	rowRef    []int32          // slot -> overlay row index, -1 = base CSR row
	rows      []denseRow       // copy-on-write overlay rows
	free      []int32          // vacated slots available for reuse
	ovArcs    int              // arcs held in overlay rows; drives coalescing
}

// denseRow is one copy-on-write adjacency row: neighbor identities in
// ascending order, with parallel slot and weight arrays.
type denseRow struct {
	ids []NodeID
	idx []int32
	wts []Weight
}

// Dense returns the dense representation of g, building it on first use
// and maintaining it incrementally across later mutations. The returned
// value and every slice reachable from it are shared and read-only.
func (g *Graph) Dense() *Dense {
	if g.dense != nil {
		return g.dense
	}
	n := len(g.nodes)
	d := &Dense{
		ids:    slices.Clone(g.nodes), // detach from in-place inserts
		off:    make([]int32, n+1),
		live:   n,
		sorted: true,
	}
	arcs := 0
	for _, v := range g.nodes {
		arcs += len(g.nbr[v])
	}
	d.nbrIDs = make([]NodeID, 0, arcs)
	d.nbrIdx = make([]int32, 0, arcs)
	d.wts = make([]Weight, 0, arcs)
	for i, v := range g.nodes {
		for _, u := range g.nbr[v] {
			j, _ := slices.BinarySearch(g.nodes, u)
			d.nbrIDs = append(d.nbrIDs, u)
			d.nbrIdx = append(d.nbrIdx, int32(j))
			d.wts = append(d.wts, g.adj[v][u])
		}
		d.off[i+1] = int32(len(d.nbrIDs))
	}
	g.dense = d
	return d
}

// N returns the number of live nodes.
func (d *Dense) N() int { return d.live }

// Slots returns the size of the slot space (live nodes plus vacated
// slots). Index-addressed layers size their parallel arrays by Slots
// and guard per-slot work with LiveAt.
func (d *Dense) Slots() int { return len(d.ids) }

// LiveAt reports whether slot i currently holds a node.
func (d *Dense) LiveAt(i int) bool { return d.ids[i] != NoNode }

// Epoch returns the structural-mutation counter: zero for a
// never-churned graph, bumped once per AddNode/RemoveNode/AddEdge/
// RemoveEdge that reaches this Dense. Weight updates do not count —
// they patch arcs in place without changing the shape.
func (d *Dense) Epoch() uint64 { return d.epoch }

// NodeEpoch counts slot-assignment changes only: node joins and
// leaves, not edge churn. A layer whose parallel arrays are indexed by
// slot (a labeling, a register file) stays index-compatible with the
// Dense exactly while NodeEpoch is unchanged.
func (d *Dense) NodeEpoch() uint64 { return d.nodeEpoch }

// Sorted reports whether slot order coincides with identity order with
// no holes — true until node churn first vacates or reuses a slot out
// of order. Layers that binary-search identity spaces check this to
// decide between search and map lookup.
func (d *Dense) Sorted() bool { return d.sorted }

// IDs returns the identities indexed by slot; vacated slots read
// NoNode. The slice is shared and read-only, and is only ascending
// while Sorted() holds.
func (d *Dense) IDs() []NodeID { return d.ids }

// ID returns the identity of slot i (NoNode for holes).
func (d *Dense) ID(i int) NodeID { return d.ids[i] }

// IndexOf returns the slot of identity v; ok is false if v is not a
// live node.
func (d *Dense) IndexOf(v NodeID) (int, bool) {
	if d.idx != nil {
		i, ok := d.idx[v]
		return int(i), ok
	}
	return slices.BinarySearch(d.ids, v)
}

// row returns slot i's adjacency row, overlay row if one exists. The
// never-churned path (rowRef nil) costs one branch over the plain CSR
// slicing: no overlay implies no appended slots, so the base arrays
// cover every index.
func (d *Dense) row(i int) (ids []NodeID, idx []int32, wts []Weight) {
	if d.rowRef == nil {
		return d.nbrIDs[d.off[i]:d.off[i+1]], d.nbrIdx[d.off[i]:d.off[i+1]], d.wts[d.off[i]:d.off[i+1]]
	}
	if r := d.rowRef[i]; r >= 0 {
		row := &d.rows[r]
		return row.ids, row.idx, row.wts
	}
	if i < len(d.off)-1 {
		return d.nbrIDs[d.off[i]:d.off[i+1]], d.nbrIdx[d.off[i]:d.off[i+1]], d.wts[d.off[i]:d.off[i+1]]
	}
	return nil, nil, nil
}

// Degree returns the degree of slot i.
func (d *Dense) Degree(i int) int {
	ids, _, _ := d.row(i)
	return len(ids)
}

// NeighborIDs returns the neighbor identities of slot i in increasing
// order. The slice is shared and read-only, valid until the next
// structural mutation.
func (d *Dense) NeighborIDs(i int) []NodeID {
	ids, _, _ := d.row(i)
	return ids
}

// NeighborIndices returns the slots of the neighbors of slot i,
// parallel to NeighborIDs(i). The slice is shared and read-only. It is
// ascending only while Sorted() holds — after slot reuse, neighbor
// order follows identity order, not slot order.
func (d *Dense) NeighborIndices(i int) []int32 {
	_, idx, _ := d.row(i)
	return idx
}

// Weights returns the incident edge weights of slot i, parallel to
// NeighborIDs(i). The slice is shared and read-only.
func (d *Dense) Weights(i int) []Weight {
	_, _, wts := d.row(i)
	return wts
}

// setWeight patches the arc u->v's weight in place. Callers (only
// Graph.UpdateEdgeWeight) keep the graph's own adjacency in sync, so
// the dense layout never diverges from the graph it mirrors.
func (d *Dense) setWeight(u, v NodeID, w Weight) {
	i, ok := d.IndexOf(u)
	if !ok {
		return
	}
	ids, _, wts := d.row(i)
	j, ok := slices.BinarySearch(ids, v)
	if !ok {
		return
	}
	wts[j] = w
}

// beginOverlay materializes the overlay bookkeeping on first mutation.
func (d *Dense) beginOverlay() {
	if d.rowRef != nil {
		return
	}
	d.rowRef = make([]int32, len(d.ids))
	for i := range d.rowRef {
		d.rowRef[i] = -1
	}
	d.idx = make(map[NodeID]int32, len(d.ids))
	for i, v := range d.ids {
		if v != NoNode {
			d.idx[v] = int32(i)
		}
	}
}

// patchRow returns a mutable overlay row for slot i, copying the base
// CSR row on first touch.
func (d *Dense) patchRow(i int) *denseRow {
	if r := d.rowRef[i]; r >= 0 {
		return &d.rows[r]
	}
	ids, idx, wts := d.row(i)
	row := denseRow{
		ids: slices.Clone(ids),
		idx: slices.Clone(idx),
		wts: slices.Clone(wts),
	}
	d.rowRef[i] = int32(len(d.rows))
	d.rows = append(d.rows, row)
	d.ovArcs += len(ids)
	return &d.rows[len(d.rows)-1]
}

// addNode inserts identity id into the slot space, reusing a vacated
// slot when one exists. It returns the assigned slot.
func (d *Dense) addNode(id NodeID) int {
	d.beginOverlay()
	d.epoch++
	d.nodeEpoch++
	d.live++
	if len(d.free) > 0 {
		slot := d.free[len(d.free)-1]
		d.free = d.free[:len(d.free)-1]
		d.ids[slot] = id
		d.idx[id] = slot
		d.sorted = false // reused slots break identity order
		return int(slot)
	}
	slot := len(d.ids)
	d.ids = append(d.ids, id)
	d.rowRef = append(d.rowRef, -1) // base row beyond off is empty
	d.idx[id] = int32(slot)
	if d.sorted && slot > 0 && d.ids[slot-1] >= id {
		d.sorted = false
	}
	return slot
}

// removeNode vacates identity id's slot. The caller (Graph.RemoveNode)
// has already removed every incident edge, so the slot's row is empty.
func (d *Dense) removeNode(id NodeID) {
	d.beginOverlay()
	i, ok := d.idx[id]
	if !ok {
		return
	}
	d.epoch++
	d.nodeEpoch++
	d.live--
	d.ids[i] = NoNode
	delete(d.idx, id)
	d.free = append(d.free, i)
	d.sorted = false // a hole breaks the binary-search invariant
}

// addEdge inserts the arc pair of edge {u,v} with weight w.
func (d *Dense) addEdge(u, v NodeID, w Weight) {
	d.beginOverlay()
	d.epoch++
	iu, _ := d.IndexOf(u)
	iv, _ := d.IndexOf(v)
	d.insertArc(iu, v, int32(iv), w)
	d.insertArc(iv, u, int32(iu), w)
	d.maybeCoalesce()
}

func (d *Dense) insertArc(i int, nbr NodeID, nbrSlot int32, w Weight) {
	row := d.patchRow(i)
	j, found := slices.BinarySearch(row.ids, nbr)
	if found {
		row.wts[j] = w
		return
	}
	row.ids = slices.Insert(row.ids, j, nbr)
	row.idx = slices.Insert(row.idx, j, nbrSlot)
	row.wts = slices.Insert(row.wts, j, w)
	d.ovArcs++
}

// removeEdge deletes the arc pair of edge {u,v}. Removals grow the
// overlay exactly like insertions (a touched row is copied whole), so
// they drive the coalescing threshold too.
func (d *Dense) removeEdge(u, v NodeID) {
	d.beginOverlay()
	d.epoch++
	iu, _ := d.IndexOf(u)
	iv, _ := d.IndexOf(v)
	d.removeArc(iu, v)
	d.removeArc(iv, u)
	d.maybeCoalesce()
}

func (d *Dense) removeArc(i int, nbr NodeID) {
	row := d.patchRow(i)
	j, found := slices.BinarySearch(row.ids, nbr)
	if !found {
		return
	}
	row.ids = slices.Delete(row.ids, j, j+1)
	row.idx = slices.Delete(row.idx, j, j+1)
	row.wts = slices.Delete(row.wts, j, j+1)
	d.ovArcs--
}

// maybeCoalesce rebuilds the base CSR arrays from the overlay once the
// overlay holds more than a quarter of all arcs (and at least 256), so
// steady churn amortizes to O(1) extra arcs scanned per accessor while
// the rebuild itself amortizes to O(1) per mutation. Slot assignment is
// preserved: no index-addressed layer needs remapping.
func (d *Dense) maybeCoalesce() {
	total := len(d.nbrIDs)
	if d.ovArcs < 256 || 4*d.ovArcs <= total {
		return
	}
	d.Coalesce()
}

// Coalesce folds the overlay back into the base CSR arrays, preserving
// slot assignment. It is exported for benchmarks that want to measure
// the rebuild in isolation; mutators call it automatically past the
// density threshold.
func (d *Dense) Coalesce() {
	slots := len(d.ids)
	arcs := 0
	for i := 0; i < slots; i++ {
		arcs += d.Degree(i)
	}
	off := make([]int32, slots+1)
	nbrIDs := make([]NodeID, 0, arcs)
	nbrIdx := make([]int32, 0, arcs)
	wts := make([]Weight, 0, arcs)
	for i := 0; i < slots; i++ {
		ids, idx, w := d.row(i)
		nbrIDs = append(nbrIDs, ids...)
		nbrIdx = append(nbrIdx, idx...)
		wts = append(wts, w...)
		off[i+1] = int32(len(nbrIDs))
	}
	d.off, d.nbrIDs, d.nbrIdx, d.wts = off, nbrIDs, nbrIdx, wts
	for i := range d.rowRef {
		d.rowRef[i] = -1
	}
	clear(d.rows) // release the folded rows' arc slices to the GC
	d.rows = d.rows[:0]
	d.ovArcs = 0
}

// OverlayArcs returns the number of arcs currently held in overlay rows
// (0 for a never-churned or freshly coalesced Dense) — observability
// for tests and benchmarks of the coalescing policy.
func (d *Dense) OverlayArcs() int { return d.ovArcs }
