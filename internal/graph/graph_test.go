package graph

import (
	"math/rand"
	"testing"
)

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New()
	if err := g.AddEdge(1, 1, 0); err == nil {
		t.Fatal("AddEdge accepted a self-loop")
	}
}

func TestBasicAccessors(t *testing.T) {
	g := New()
	g.MustAddEdge(3, 1, 10)
	g.MustAddEdge(1, 2, 20)
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d, want 3, 2", g.N(), g.M())
	}
	if got := g.Nodes(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Nodes() = %v", got)
	}
	if !g.HasEdge(1, 3) || !g.HasEdge(3, 1) {
		t.Error("HasEdge not symmetric")
	}
	if w, ok := g.EdgeWeight(1, 3); !ok || w != 10 {
		t.Errorf("EdgeWeight(1,3) = %d,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(2, 3); ok {
		t.Error("EdgeWeight found nonexistent edge")
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if g.Degree(1) != 2 || g.Degree(2) != 1 {
		t.Error("degrees wrong")
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if g.MinID() != 1 {
		t.Errorf("MinID = %d", g.MinID())
	}
}

func TestEdgeCanonicalOther(t *testing.T) {
	e := Edge{U: 5, V: 2, W: 7}
	c := e.Canonical()
	if c.U != 2 || c.V != 5 || c.W != 7 {
		t.Errorf("Canonical = %+v", c)
	}
	if e.Other(5) != 2 || e.Other(2) != 5 {
		t.Error("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other accepted non-endpoint")
		}
	}()
	e.Other(9)
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name      string
		g         *Graph
		wantN     int
		wantM     int
		connected bool
	}{
		{"path", Path(10), 10, 9, true},
		{"ring", Ring(10), 10, 10, true},
		{"star", Star(10), 10, 9, true},
		{"complete", Complete(6), 6, 15, true},
		{"grid", Grid(3, 4), 12, 17, true},
		{"caterpillar", Caterpillar(5, 2), 15, 14, true},
		{"lollipop", Lollipop(5, 4), 9, 14, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.g.N() != c.wantN {
				t.Errorf("N = %d, want %d", c.g.N(), c.wantN)
			}
			if c.g.M() != c.wantM {
				t.Errorf("M = %d, want %d", c.g.M(), c.wantM)
			}
			if c.g.Connected() != c.connected {
				t.Errorf("Connected = %v, want %v", c.g.Connected(), c.connected)
			}
		})
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40) + 2
		g := RandomConnected(n, 0.2, rng)
		if g.N() != n {
			t.Fatalf("N = %d, want %d", g.N(), n)
		}
		if !g.Connected() {
			t.Fatal("RandomConnected produced a disconnected graph")
		}
		if !g.DistinctWeights() {
			t.Fatal("RandomConnected produced duplicate weights")
		}
		if g.M() < n-1 {
			t.Fatalf("M = %d < n-1", g.M())
		}
	}
}

func TestRandomGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := RandomGeometric(30, 0.25, rng)
		if g.N() != 30 {
			t.Fatalf("N = %d", g.N())
		}
		if !g.Connected() {
			t.Fatal("RandomGeometric not connected after stitching")
		}
		if !g.DistinctWeights() {
			t.Fatal("duplicate weights")
		}
	}
}

func TestHamiltonianWheel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := HamiltonianWheel(12, 6, rng)
	if !g.Connected() {
		t.Fatal("not connected")
	}
	if g.M() < 12 {
		t.Fatalf("M = %d, want >= 12", g.M())
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	dist, err := g.BFSDistances(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if dist[NodeID(i)] != i-1 {
			t.Errorf("dist[%d] = %d, want %d", i, dist[NodeID(i)], i-1)
		}
	}
	if _, err := g.BFSDistances(99); err == nil {
		t.Error("accepted unknown root")
	}
	// Unreachable nodes reported.
	g2 := New()
	g2.AddNode(1)
	g2.AddNode(2)
	if _, err := g2.BFSDistances(1); err == nil {
		t.Error("accepted disconnected graph")
	}
}

func TestEdgesSortedAndByWeight(t *testing.T) {
	g := New()
	g.MustAddEdge(2, 1, 30)
	g.MustAddEdge(3, 1, 10)
	g.MustAddEdge(2, 3, 20)
	es := g.Edges()
	if len(es) != 3 || es[0].U != 1 || es[0].V != 2 {
		t.Fatalf("Edges() = %v", es)
	}
	byW := g.EdgesByWeight()
	if byW[0].W != 10 || byW[1].W != 20 || byW[2].W != 30 {
		t.Fatalf("EdgesByWeight() = %v", byW)
	}
}

func TestClone(t *testing.T) {
	g := Ring(6)
	c := g.Clone()
	c.MustAddEdge(1, 4, 99)
	if g.HasEdge(1, 4) {
		t.Error("Clone shares adjacency with original")
	}
	if c.M() != g.M()+1 {
		t.Error("clone edge count wrong")
	}
}

func TestUnionFind(t *testing.T) {
	nodes := []NodeID{1, 2, 3, 4, 5}
	uf := NewUnionFind(nodes)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(1, 2) {
		t.Error("Union(1,2) = false")
	}
	if uf.Union(2, 1) {
		t.Error("re-union reported a merge")
	}
	uf.Union(3, 4)
	uf.Union(1, 3)
	if uf.Sets() != 2 {
		t.Errorf("Sets = %d, want 2", uf.Sets())
	}
	if !uf.Same(2, 4) {
		t.Error("Same(2,4) = false")
	}
	if uf.Same(2, 5) {
		t.Error("Same(2,5) = true")
	}
}

func TestDistinctWeightsDetectsDuplicates(t *testing.T) {
	g := New()
	g.MustAddEdge(1, 2, 7)
	g.MustAddEdge(2, 3, 7)
	if g.DistinctWeights() {
		t.Error("DistinctWeights missed a duplicate")
	}
}
