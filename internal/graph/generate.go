package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// The generators below produce the graph families used throughout the
// experiments: regular topologies exercising worst cases of the paper's
// algorithms (paths and rings maximize stabilization distance, complete
// graphs maximize degree, lollipops stress the MDST potential), and random
// families standing in for the sensor networks that motivated the paper's
// interest in MDST (Section I-D, the 802.15.4 MAC protocol design).
//
// All generators number nodes 1..n and, where weighted, assign pairwise
// distinct weights (Section II-A assumes distinct weights w.l.o.g.).

// Path returns the path 1-2-...-n.
func Path(n int) *Graph {
	g := New()
	g.AddNode(1)
	for i := 1; i < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), Weight(i))
	}
	return g
}

// Ring returns the cycle 1-2-...-n-1. It panics for n < 3.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: ring needs n >= 3, got %d", n))
	}
	g := Path(n)
	g.MustAddEdge(NodeID(n), 1, Weight(n))
	return g
}

// Star returns the star with center 1 and leaves 2..n.
func Star(n int) *Graph {
	g := New()
	g.AddNode(1)
	for i := 2; i <= n; i++ {
		g.MustAddEdge(1, NodeID(i), Weight(i))
	}
	return g
}

// Complete returns the complete graph K_n with distinct weights.
func Complete(n int) *Graph {
	g := New()
	g.AddNode(1)
	w := Weight(1)
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			g.MustAddEdge(NodeID(i), NodeID(j), w)
			w++
		}
	}
	return g
}

// Grid returns the rows x cols grid graph, nodes numbered row-major
// starting at 1.
func Grid(rows, cols int) *Graph {
	g := New()
	id := func(r, c int) NodeID { return NodeID(r*cols + c + 1) }
	w := Weight(1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(id(r, c))
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), w)
				w++
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), w)
				w++
			}
		}
	}
	return g
}

// Caterpillar returns a spine of length spine with legs leaves attached to
// every spine node. Caterpillars stress heavy-path decompositions.
func Caterpillar(spine, legs int) *Graph {
	g := Path(spine)
	next := NodeID(spine + 1)
	w := Weight(spine + 1)
	for i := 1; i <= spine; i++ {
		for j := 0; j < legs; j++ {
			g.MustAddEdge(NodeID(i), next, w)
			next++
			w++
		}
	}
	return g
}

// Lollipop returns a clique of size k attached to a path of length tail.
// Lollipop graphs have minimum spanning-tree degree close to k-1 near the
// clique, stressing the MDST improvement steps.
func Lollipop(k, tail int) *Graph {
	g := Complete(k)
	w := Weight(k*k + 1)
	prev := NodeID(k)
	for i := 1; i <= tail; i++ {
		next := NodeID(k + i)
		g.MustAddEdge(prev, next, w)
		prev = next
		w++
	}
	return g
}

// Dumbbell returns two cliques of size k joined by a path of bar inner
// nodes (bar = 0 joins the cliques by a single edge). Dumbbells combine
// the worst cases of lollipops at both ends: high-degree regions far
// apart, joined by a cut path every tree must cross — adversarial for
// stabilization distance and for MDST degree pressure at once.
func Dumbbell(k, bar int) *Graph {
	if k < 1 {
		panic(fmt.Sprintf("graph: dumbbell needs k >= 1, got %d", k))
	}
	g := Complete(k)
	w := Weight(k*k + 1)
	// Path of bar inner nodes from clique A's last node...
	prev := NodeID(k)
	for i := 1; i <= bar; i++ {
		next := NodeID(k + i)
		g.MustAddEdge(prev, next, w)
		prev = next
		w++
	}
	// ...into clique B on nodes k+bar+1 .. 2k+bar.
	base := k + bar
	for i := 1; i <= k; i++ {
		g.AddNode(NodeID(base + i))
		for j := i + 1; j <= k; j++ {
			g.MustAddEdge(NodeID(base+i), NodeID(base+j), w)
			w++
		}
	}
	g.MustAddEdge(prev, NodeID(base+1), w)
	return g
}

// RandomConnected returns a connected Erdős–Rényi-style graph: a random
// spanning tree plus each remaining pair independently with probability p,
// with pairwise distinct random weights. Deterministic given rng.
//
// The non-tree pairs are chosen by geometric skip-sampling, so the cost
// is O(n + m) rather than the O(n²) of testing every pair — the
// difference between milliseconds and half a minute at the 10k-node
// scale of the routing experiments.
func RandomConnected(n int, p float64, rng *rand.Rand) *Graph {
	g := New()
	// Nodes are always 1..n; adding them in increasing order up front
	// keeps AddNode's sorted insert append-only (random insertion order
	// through the permuted spanning tree below would cost Θ(n²) shifts).
	for i := 1; i <= n; i++ {
		g.AddNode(NodeID(i))
	}
	perm := rng.Perm(n)
	ids := make([]NodeID, n)
	for i, x := range perm {
		ids[i] = NodeID(x + 1)
	}
	// Weights stay in the historical [1, n(n-1)/2 * 1000] range: wide
	// enough for distinctness, small enough that tree-weight sums and
	// O(log weight) label encodings behave.
	maxW := int64(n) * int64(n-1) / 2 * 1000
	if maxW < 1000 {
		maxW = 1000
	}
	seen := make(map[Weight]bool, 2*n)
	nextWeight := func() Weight {
		for {
			w := Weight(rng.Int63n(maxW) + 1)
			if !seen[w] {
				seen[w] = true
				return w
			}
		}
	}
	// Random spanning tree: attach each node to a random earlier node.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g.MustAddEdge(ids[i], ids[j], nextWeight())
	}
	if p <= 0 {
		return g
	}
	// Enumerate the pairs (i, j), i < j, as a linear index space and jump
	// between selected pairs with geometrically distributed skips.
	total := n * (n - 1) / 2
	base := func(i int) int { return i*(n-1) - i*(i-1)/2 } // index of (i, i+1)
	skip := func() int {
		if p >= 1 {
			return 1
		}
		u := rng.Float64()
		return 1 + int(math.Log(1-u)/math.Log1p(-p))
	}
	row := 0
	for k := skip() - 1; k < total; k += skip() {
		for row+1 < n && k >= base(row+1) {
			row++
		}
		i, j := row, row+1+(k-base(row))
		u, v := NodeID(i+1), NodeID(j+1)
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, nextWeight())
		}
	}
	return g
}

// RandomGeometric returns a random geometric graph: n points uniform in
// the unit square, edges between pairs within distance radius, weights =
// scaled distances made distinct by index perturbation. If the result is
// disconnected, nearest components are stitched. This family models the
// sensor networks (802.15.4) motivating the paper's MDST application.
func RandomGeometric(n int, radius float64, rng *rand.Rand) *Graph {
	type pt struct{ x, y float64 }
	pts := make([]pt, n+1)
	for i := 1; i <= n; i++ {
		pts[i] = pt{x: rng.Float64(), y: rng.Float64()}
	}
	dist := func(i, j int) float64 {
		dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
		return math.Sqrt(dx*dx + dy*dy)
	}
	g := New()
	for i := 1; i <= n; i++ {
		g.AddNode(NodeID(i))
	}
	// Distinct weights: scale distance to integer and break ties by pair
	// index, preserving the geometric ordering almost everywhere.
	weightOf := func(i, j int) Weight {
		return Weight(int64(dist(i, j)*1e9)*int64(n*n) + int64(i*n+j))
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if dist(i, j) <= radius {
				g.MustAddEdge(NodeID(i), NodeID(j), weightOf(i, j))
			}
		}
	}
	// Stitch components with the shortest available inter-component link.
	for !g.Connected() {
		comp := components(g)
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if comp[NodeID(i)] != comp[NodeID(j)] && dist(i, j) < best {
					best, bi, bj = dist(i, j), i, j
				}
			}
		}
		g.MustAddEdge(NodeID(bi), NodeID(bj), weightOf(bi, bj))
	}
	return g
}

// HamiltonianWheel returns a Hamiltonian graph: a ring plus chords. Every
// Hamiltonian graph has an FR-tree given by its Hamiltonian path with all
// nodes marked bad (paper, Section VIII).
func HamiltonianWheel(n int, chords int, rng *rand.Rand) *Graph {
	g := Ring(n)
	w := Weight(10 * n)
	for c := 0; c < chords; c++ {
		u := NodeID(rng.Intn(n) + 1)
		v := NodeID(rng.Intn(n) + 1)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, w)
			w++
		}
	}
	return g
}

// components labels each node with a component representative.
func components(g *Graph) map[NodeID]NodeID {
	comp := make(map[NodeID]NodeID, g.N())
	for _, start := range g.Nodes() {
		if _, ok := comp[start]; ok {
			continue
		}
		stack := []NodeID{start}
		comp[start] = start
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if _, ok := comp[u]; !ok {
					comp[u] = start
					stack = append(stack, u)
				}
			}
		}
	}
	return comp
}
