// Package graph provides the network substrate of the paper's model
// (Section II-A): simple connected graphs whose nodes carry distinct,
// incorruptible identities, and whose edges may carry distinct,
// incorruptible weights storable on O(log n) bits.
package graph

import (
	"cmp"
	"fmt"
	"slices"
)

// NodeID is a node identity, drawn from {1, ..., n^c} as in the paper.
// Identities are constants: a self-stabilizing algorithm may read them but
// transient faults never corrupt them.
type NodeID int

// Weight is an edge weight. The paper assumes all weights are pairwise
// distinct (w.l.o.g. per [34]); generators in this package enforce that.
type Weight int64

// Edge is an undirected edge between two nodes, optionally weighted.
type Edge struct {
	U, V NodeID
	W    Weight
}

// Canonical returns the edge with endpoints ordered U < V, so that edges
// compare structurally regardless of construction order.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// SameEndpoints reports whether two edges join the same pair of nodes,
// ignoring the weight field (structures such as fundamental cycles carry
// weightless edges).
func SameEndpoints(a, b Edge) bool {
	ac, bc := a.Canonical(), b.Canonical()
	return ac.U == bc.U && ac.V == bc.V
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x NodeID) NodeID {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d not an endpoint of edge %v", x, e))
}

// Graph is a simple undirected graph. The zero value is an empty graph;
// use New or a generator to obtain a usable instance.
type Graph struct {
	nodes []NodeID
	adj   map[NodeID]map[NodeID]Weight
	// nbr mirrors adj as sorted neighbor slices, maintained incrementally
	// so that Neighbors — the hottest call of the runtime's view building
	// and of the routing forwarding loop — needs no per-call sort.
	nbr map[NodeID][]NodeID
	// dense caches the index-addressed layout of Dense(); once built,
	// mutations keep it in sync incrementally through its patch overlay
	// instead of invalidating it, so index-addressed layers (register
	// files, labelings, routers) survive live topology churn.
	dense *Dense
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		adj: make(map[NodeID]map[NodeID]Weight),
		nbr: make(map[NodeID][]NodeID),
	}
}

// insertSorted inserts id into the sorted slice s if absent.
func insertSorted(s []NodeID, id NodeID) []NodeID {
	i, found := slices.BinarySearch(s, id)
	if found {
		return s
	}
	return slices.Insert(s, i, id)
}

// AddNode inserts a node. Adding an existing node is a no-op. Negative
// identities are rejected (the paper draws IDs from {1..n^c}; the dense
// layer reserves NoNode for vacated slots).
func (g *Graph) AddNode(id NodeID) {
	if _, ok := g.adj[id]; ok {
		return
	}
	if id < 0 {
		panic(fmt.Sprintf("graph: negative node identity %d", id))
	}
	g.adj[id] = make(map[NodeID]Weight)
	g.nodes = insertSorted(g.nodes, id)
	if g.dense != nil {
		g.dense.addNode(id)
	}
}

// AddEdge inserts an undirected edge with weight w, adding missing
// endpoints. Self-loops are rejected; re-adding an edge overwrites its
// weight.
func (g *Graph) AddEdge(u, v NodeID, w Weight) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	g.AddNode(u)
	g.AddNode(v)
	_, existed := g.adj[u][v]
	if !existed {
		g.nbr[u] = insertSorted(g.nbr[u], v)
		g.nbr[v] = insertSorted(g.nbr[v], u)
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
	if g.dense != nil {
		if existed {
			g.dense.setWeight(u, v, w)
			g.dense.setWeight(v, u, w)
		} else {
			g.dense.addEdge(u, v, w)
		}
	}
	return nil
}

// RemoveEdge deletes the edge {u,v}. It returns an error if the edge is
// absent, so double-removal is loud rather than silently idempotent.
func (g *Graph) RemoveEdge(u, v NodeID) error {
	if _, ok := g.adj[u][v]; !ok {
		return fmt.Errorf("graph: no edge {%d,%d}", u, v)
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.nbr[u] = deleteSorted(g.nbr[u], v)
	g.nbr[v] = deleteSorted(g.nbr[v], u)
	if g.dense != nil {
		g.dense.removeEdge(u, v)
	}
	return nil
}

// RemoveNode deletes node id and every incident edge. It returns an
// error if the node is absent. The node's dense slot is vacated and
// becomes available for a later AddNode.
func (g *Graph) RemoveNode(id NodeID) error {
	if _, ok := g.adj[id]; !ok {
		return fmt.Errorf("graph: no node %d", id)
	}
	for _, u := range slices.Clone(g.nbr[id]) {
		if err := g.RemoveEdge(id, u); err != nil {
			return err
		}
	}
	delete(g.adj, id)
	delete(g.nbr, id)
	g.nodes = deleteSorted(g.nodes, id)
	if g.dense != nil {
		g.dense.removeNode(id)
	}
	return nil
}

// deleteSorted removes id from the sorted slice s if present.
func deleteSorted(s []NodeID, id NodeID) []NodeID {
	i, found := slices.BinarySearch(s, id)
	if !found {
		return s
	}
	return slices.Delete(s, i, i+1)
}

// UpdateEdgeWeight overwrites the weight of the existing edge {u,v}
// without invalidating the dense snapshot: the snapshot's weight arcs
// are patched in place, so index-addressed layers holding the snapshot
// (the runtime's register file, the router) observe the new weight
// immediately. It is the graph half of live topology churn — the
// structural shape stays fixed, only the cost surface moves. It returns
// an error if the edge is absent.
func (g *Graph) UpdateEdgeWeight(u, v NodeID, w Weight) error {
	if _, ok := g.adj[u][v]; !ok {
		return fmt.Errorf("graph: no edge {%d,%d}", u, v)
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
	if d := g.dense; d != nil {
		d.setWeight(u, v, w)
		d.setWeight(v, u, w)
	}
	return nil
}

// MustAddEdge is AddEdge that panics on error; for generators and tests.
func (g *Graph) MustAddEdge(u, v NodeID, w Weight) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.nodes) }

// M returns the number of edges.
func (g *Graph) M() int {
	m := 0
	for _, nbrs := range g.adj {
		m += len(nbrs)
	}
	return m / 2
}

// Nodes returns the node identities in increasing order. The returned
// slice is a copy: callers may mutate it freely.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// HasNode reports whether id is a node of g.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.adj[id]
	return ok
}

// HasEdge reports whether {u,v} is an edge of g.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.adj[u][v]
	return ok
}

// EdgeWeight returns the weight of edge {u,v}; ok is false if the edge is
// absent.
func (g *Graph) EdgeWeight(u, v NodeID) (Weight, bool) {
	w, ok := g.adj[u][v]
	return w, ok
}

// Neighbors returns the neighbors of v in increasing ID order. The slice
// is a copy.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return slices.Clone(g.nbr[v])
}

// NeighborsShared returns the neighbors of v in increasing ID order
// without copying. The slice is owned by the graph: callers must not
// mutate it and must not hold it across AddEdge calls. It exists for the
// per-step view building of the runtime and the per-hop forwarding
// decisions of the router, where the defensive copy of Neighbors
// dominates the profile.
func (g *Graph) NeighborsShared(v NodeID) []NodeID {
	return g.nbr[v]
}

// Degree returns the degree of v in g.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// MaxDegree returns the maximum node degree in g (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// Edges returns all edges, canonically oriented (U < V), sorted by
// (U, V). The slice is a copy.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for _, u := range g.nodes {
		for _, v := range g.nbr[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v, W: g.adj[u][v]})
			}
		}
	}
	return out
}

// EdgesByWeight returns all edges sorted by increasing weight, ties broken
// by (U, V) — the standard distinct-weight reduction of [34].
func (g *Graph) EdgesByWeight() []Edge {
	out := g.Edges()
	slices.SortFunc(out, func(a, b Edge) int {
		switch {
		case a.W != b.W:
			return cmp.Compare(a.W, b.W)
		case a.U != b.U:
			return cmp.Compare(a.U, b.U)
		default:
			return cmp.Compare(a.V, b.V)
		}
	})
	return out
}

// Connected reports whether g is connected (the paper assumes connected
// networks). The empty graph is vacuously connected. The traversal runs
// over the dense snapshot — index-addressed, no map per visit — since
// every NewNetwork pays this check.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	d := g.Dense()
	seen := make([]bool, d.Slots())
	start, ok := d.IndexOf(g.nodes[0])
	if !ok {
		return false
	}
	stack := make([]int32, 1, 64)
	stack[0] = int32(start)
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range d.NeighborIndices(int(v)) {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == len(g.nodes)
}

// BFSDistances returns the hop distance from root to every node, or an
// error if some node is unreachable.
func (g *Graph) BFSDistances(root NodeID) (map[NodeID]int, error) {
	if !g.HasNode(root) {
		return nil, fmt.Errorf("graph: unknown root %d", root)
	}
	dist := make(map[NodeID]int, len(g.nodes))
	dist[root] = 0
	queue := []NodeID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.nbr[v] {
			if _, ok := dist[u]; !ok {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	if len(dist) != len(g.nodes) {
		return nil, fmt.Errorf("graph: %d of %d nodes unreachable from %d",
			len(g.nodes)-len(dist), len(g.nodes), root)
	}
	return dist, nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	out := New()
	for _, v := range g.nodes {
		out.AddNode(v)
	}
	for _, e := range g.Edges() {
		out.MustAddEdge(e.U, e.V, e.W)
	}
	return out
}

// DistinctWeights reports whether all edge weights are pairwise distinct.
func (g *Graph) DistinctWeights() bool {
	seen := make(map[Weight]bool, g.M())
	for _, e := range g.Edges() {
		if seen[e.W] {
			return false
		}
		seen[e.W] = true
	}
	return true
}

// MinID returns the smallest node identity; it panics on an empty graph.
// The substrate leader election (Instruction 1 of the paper's Algorithm 1)
// elects this node.
func (g *Graph) MinID() NodeID {
	if len(g.nodes) == 0 {
		panic("graph: MinID of empty graph")
	}
	return g.nodes[0]
}
