// Command sstsim runs one self-stabilization simulation: pick an
// algorithm, a graph family, and a scheduler; start from an arbitrary
// (adversarial) configuration; watch the system converge to a silent
// legal configuration; optionally inject faults and watch it recover.
//
// The -route mode serves traffic over the stabilized tree instead:
// label the tree with routing coordinates, drive a packet workload,
// and report delivery, hops, and stretch. With -faults it runs the
// fault-interplay experiment — corrupt registers under live traffic
// and measure loops/drops during reconvergence — once per substrate
// (BFS, MST, MDST).
//
// Usage examples:
//
//	sstsim -alg bfs -graph random:40:0.1 -sched adversarial -faults 5
//	sstsim -alg mst -graph geometric:24:0.35
//	sstsim -alg mdst -graph lollipop:6:8 -seed 7
//	sstsim -route -graph random:10000:0.002 -packets 100000
//	sstsim -route -workload hotspot -graph geometric:400:0.08
//	sstsim -route -faults 4 -graph random:32:0.15
//
// The -cluster mode deploys the algorithm as a message-passing cluster
// instead of the simulator: one goroutine-actor per node exchanging
// heartbeat frames over a faulty in-process transport, with a packet
// batch served end-to-end as data frames once the tree is quiet:
//
//	sstsim -cluster -alg bfs -graph random:24:0.2 -loss 0.1
//
// The -serve mode runs the cluster free-running over real loopback UDP
// sockets and binds a per-node admin API (getself / getpeers / gettree
// / getstats / getquiet, plus Prometheus /metrics) — the
// operations-plane demo. Once the in-band termination detector's
// convergecast reaches the root, the cluster announces its own silence
// (an "announce:" line, the ss_cluster_detected_quiet gauge, and every
// node's /getquiet).
// Crawl it with sscrawl, or curl any node's socket. Add -trace to arm
// the per-node flight recorder (collect the causal timeline with
// sstrace) and -pprof to expose net/http/pprof on its own socket:
//
//	sstsim -serve -alg spanning -graph random:64:0.1 \
//	    -admin-dir /tmp/admin.txt -tree-out /tmp/tree.txt \
//	    -trace -pprof 127.0.0.1:6060
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"silentspan/internal/bfs"
	"silentspan/internal/cert"
	"silentspan/internal/cluster"
	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/ops"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

func main() {
	algName := flag.String("alg", "bfs", "algorithm: spanning | switching | bfs | mst | mdst")
	graphSpec := flag.String("graph", "random:30:0.15", "graph: ring:n | path:n | grid:r:c | complete:n | star:n | lollipop:k:t | random:n:p | geometric:n:r")
	schedName := flag.String("sched", "central", "scheduler: central | synchronous | adversarial | roundrobin | random")
	seed := flag.Int64("seed", 1, "random seed")
	faults := flag.Int("faults", 0, "registers to corrupt after stabilization (rule-based algorithms)")
	maxMoves := flag.Int("maxmoves", 10_000_000, "move budget")
	route := flag.Bool("route", false, "serve traffic over the stabilized tree instead of just constructing it")
	packets := flag.Int("packets", 100_000, "route mode: packets to drive")
	workload := flag.String("workload", "uniform", "route mode: uniform | hotspot | allpairs")
	churn := flag.Int("churn", 0, "apply this many live-topology churn ops (joins/leaves/link flaps/partitions) after stabilization, with traffic flying")
	clusterMode := flag.Bool("cluster", false, "run the algorithm as a message-passing cluster: goroutine-per-node actors exchanging heartbeat frames over a faulty in-process transport")
	loss := flag.Float64("loss", 0.1, "cluster mode: heartbeat/data frame loss probability (dup/corrupt/delay ride along at fixed rates)")
	serve := flag.Bool("serve", false, "deploy the cluster free-running over loopback UDP with a per-node admin API, until SIGINT/SIGTERM (or -serve-for)")
	adminDir := flag.String("admin-dir", "", "serve mode: write the admin directory (one 'id addr' line per node) to this file at startup")
	treeOut := flag.String("tree-out", "", "serve mode: write the stabilized parent map (one 'child parent' line per node, 0 = root) to this file once the cluster is quiet")
	serveFor := flag.Duration("serve-for", 0, "serve mode: exit after this duration (0 = run until signalled)")
	interval := flag.Duration("interval", 5*time.Millisecond, "serve mode: per-node tick period; shorter converges faster but saturates small machines (staleness flapping)")
	backoffCap := flag.Int("backoff-cap", 0, "serve mode: max keep-alive gap in ticks while quiet (0 = derive from the staleness TTL, ≈64; clamped so live peers never expire)")
	minGap := flag.Int("min-gap", 0, "serve mode: min ticks between change-triggered frames (0 = 1; raise to coalesce bursts)")
	fullEvery := flag.Int("full-every", 0, "serve mode: re-anchor the delta stream with a full frame every this many broadcasts (0 = 16)")
	legacyWire := flag.Bool("legacy-wire", false, "serve mode: classic full-state heartbeat frames instead of delta frames (baseline/bisection)")
	noBackoff := flag.Bool("no-backoff", false, "serve mode: keep-alive every heartbeat period even when quiet (baseline/bisection)")
	churnKill := flag.Int("churn-kill", 0, "serve mode: once quiet, crash this many non-root nodes (connectivity-preserving), then rejoin the same ids after -churn-rejoin-after; tree-out and admin-dir are republished when quiet again")
	churnRejoin := flag.Duration("churn-rejoin-after", 2*time.Second, "serve mode: how long the killed nodes stay dead before rejoining")
	traceOn := flag.Bool("trace", false, "serve mode: arm the per-node flight recorder (collect with sstrace, or curl any node's /gettrace)")
	traceCap := flag.Int("trace-cap", 8192, "serve mode: flight-recorder ring capacity in events per node")
	pprofAddr := flag.String("pprof", "", "serve mode: also serve net/http/pprof on this address (host:port)")
	flag.Parse()

	g, err := parseGraph(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("graph: %s (n=%d, m=%d)\n", *graphSpec, g.N(), g.M())

	if *route {
		// Route mode fixes the substrate (spanning, benign start) and
		// daemon (synchronous); reject construction-mode flags rather
		// than silently ignoring them.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "alg", "sched", "maxmoves":
				fatal(fmt.Errorf("-%s is a construction-mode flag and has no effect with -route", f.Name))
			}
		})
		if *faults > 0 {
			if *workload != "uniform" {
				fatal(fmt.Errorf("-route -faults measures uniform batches; -workload %s is not supported there", *workload))
			}
			runRouteInterplay(g, *faults, *packets, *seed)
		} else {
			runRoute(g, *workload, *packets, rng)
		}
		return
	}

	if *serve {
		// Heartbeat every other tick and a generous TTL: a node goroutine
		// starved for a scheduling quantum on a loaded machine must not
		// see its whole neighborhood expire, or the cluster churns
		// forever. The wide TTL also derives a wide keep-alive back-off
		// cap ((TTL−2)/4 = 64 ticks), so an idle cluster's frame rate sits
		// well over an order of magnitude below the converging rate.
		cfg := cluster.Config{
			Interval: *interval, HeartbeatEvery: 2, StalenessTTL: 258,
			BackoffCap: *backoffCap, MinGap: *minGap, FullEvery: *fullEvery,
			DisableDelta: *legacyWire, DisableBackoff: *noBackoff,
		}
		sv := serveOpts{
			adminDir: *adminDir, treeOut: *treeOut, serveFor: *serveFor,
			churnKill: *churnKill, churnRejoin: *churnRejoin, pprofAddr: *pprofAddr,
		}
		if *traceOn {
			sv.traceCap = *traceCap
		}
		runServe(*algName, g, *seed, sv, cfg)
		return
	}

	if *clusterMode {
		runCluster(*algName, g, *seed, *loss)
		return
	}

	if *churn > 0 {
		runChurn(*algName, g, *churn, *seed, *maxMoves)
		return
	}

	switch *algName {
	case "mst", "mdst":
		runEngine(*algName, g, rng)
	case "spanning", "switching", "bfs":
		runRules(*algName, g, *schedName, rng, *faults, *maxMoves)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algName))
	}
}

// alwaysOn resolves one of the always-on (rule-based) substrates, the
// only algorithms the cluster modes deploy directly.
func alwaysOn(algName, mode string) runtime.Algorithm {
	switch algName {
	case "spanning":
		return spanning.Algorithm{}
	case "switching":
		return switching.Algorithm{}
	case "bfs":
		return bfs.Algorithm{}
	}
	fatal(fmt.Errorf("%s drives the always-on substrates: spanning | switching | bfs (got %q)", mode, algName))
	return nil
}

// extractAlwaysOn pulls the stabilized tree out of a silent projection
// of an always-on substrate.
func extractAlwaysOn(algName string, net *runtime.Network) (*trees.Tree, error) {
	if algName == "spanning" {
		return spanning.ExtractTree(net)
	}
	return switching.ExtractTree(net, switching.RegOf)
}

// serveOpts bundles the serve-mode knobs.
type serveOpts struct {
	adminDir, treeOut     string
	serveFor, churnRejoin time.Duration
	churnKill, traceCap   int
	pprofAddr             string
}

// runServe is the operations-plane demo: deploy the cluster
// free-running over real loopback UDP sockets, bind one admin HTTP
// socket per node, and serve until signalled (or -serve-for elapses).
// Once the registers go quiet the stabilized parent map is published
// to -tree-out, so an external crawler (sscrawl -diff) can certify
// that the admin plane's reconstruction matches the coordinator's
// ground truth. With -churn-kill the quiet cluster then loses that
// many members mid-flight, gets them back after -churn-rejoin-after,
// and must re-stabilize — the published artifacts describe the
// post-churn cluster, so the external certification covers live
// membership, not just the boot path. With -trace every node records
// into a flight-recorder ring that sstrace (or /gettrace) collects
// into the cluster-wide causal timeline.
func runServe(algName string, g *graph.Graph, seed int64, sv serveOpts, cfg cluster.Config) {
	adminDir, treeOut := sv.adminDir, sv.treeOut
	serveFor, churnKill, churnRejoin := sv.serveFor, sv.churnKill, sv.churnRejoin
	alg := alwaysOn(algName, "-serve")
	rng := rand.New(rand.NewSource(seed))
	tr := cluster.NewUDPTransport()
	defer tr.Close()
	cl, err := cluster.New(g, alg, tr, cfg)
	if err != nil {
		fatal(err)
	}
	ops.RegisterGoCollectors(cl.Metrics())
	if sv.traceCap > 0 {
		cl.EnableFlightRecorder(sv.traceCap)
		fmt.Printf("flight recorder armed: %d-event rings (collect with sstrace)\n", sv.traceCap)
	}
	if sv.pprofAddr != "" {
		psrv := &http.Server{Addr: sv.pprofAddr, Handler: ops.PprofHandler()}
		ln, err := net.Listen("tcp", sv.pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof listener: %w", err))
		}
		defer psrv.Close()
		go psrv.Serve(ln)
		fmt.Printf("pprof: http://%s/debug/pprof/\n", ln.Addr())
	}
	cl.InitArbitrary(rng)
	admin, err := cl.ServeAdmin()
	if err != nil {
		fatal(err)
	}
	defer admin.Close()

	publishDir := func() error {
		if adminDir == "" {
			return nil
		}
		var b strings.Builder
		for _, e := range admin.Addrs() {
			fmt.Fprintf(&b, "%d %s\n", e.ID, e.Addr)
		}
		return writeFileAtomic(adminDir, b.String())
	}
	if err := publishDir(); err != nil {
		fatal(err)
	}
	seedID := g.MinID()
	fmt.Printf("serving %d %s actors over loopback UDP\n", cl.Nodes(), alg.Name())
	fmt.Printf("admin seed: http://%s/  (sscrawl -addr %s; curl .../getself .../metrics)\n",
		admin.Addr(seedID), admin.Addr(seedID))

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if serveFor > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, serveFor)
		defer tcancel()
	}
	served := make(chan error, 1)
	go func() { served <- cl.Serve(ctx) }()

	// Announcement watcher: the in-band termination detector's verdicts
	// as they land — the cluster telling us it is quiet over its own
	// heartbeat frames, no mirror or coordinator read needed.
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ev := <-cl.QuietEvents():
				if ev.Announced {
					fmt.Printf("announce: cluster quiet at epoch %d (root %d), detected in-band\n", ev.Epoch, ev.Root)
				} else {
					fmt.Printf("announce: retracted at epoch %d (root %d)\n", ev.Epoch, ev.Root)
				}
			}
		}
	}()

	// Quiet watcher: poll the mirror until it projects to a silent tree,
	// optionally put the membership through a kill/rejoin cycle, then
	// publish the parent map for external certification.
	go func() {
		waitSilent := func() *trees.Tree {
			for {
				select {
				case <-ctx.Done():
					return nil
				case <-time.After(200 * time.Millisecond):
				}
				net, err := cl.Mirror()
				if err != nil || !net.Silent() {
					continue
				}
				tree, err := extractAlwaysOn(algName, net)
				if err != nil {
					continue // silent snapshot of a mid-flight moment; keep polling
				}
				return tree
			}
		}
		tree := waitSilent()
		if tree == nil {
			return
		}
		st := cl.Stats()
		fmt.Printf("quiet: silent tree root=%d, %d frames sent, %d register writes; still serving\n",
			tree.Root(), st.FramesSent, st.RegisterWrites)

		if churnKill > 0 {
			victims, adj := pickVictims(cl, churnKill)
			for _, v := range victims {
				if err := cl.Crash(v); err != nil {
					fmt.Fprintln(os.Stderr, "sstsim:", err)
					return
				}
			}
			fmt.Printf("churn: crashed %v; rejoining in %s\n", victims, churnRejoin)
			select {
			case <-ctx.Done():
				return
			case <-time.After(churnRejoin):
			}
			// Rejoin in crash order: an edge between two victims is
			// carried by whichever of them rejoins second.
			for _, v := range victims {
				var edges []graph.Edge
				for _, e := range adj[v] {
					if cl.Node(e.V) != nil {
						edges = append(edges, e)
					}
				}
				if err := cl.Join(v, edges); err != nil {
					fmt.Fprintln(os.Stderr, "sstsim:", err)
					return
				}
			}
			fmt.Printf("churn: rejoined %v; waiting for re-stabilization\n", victims)
			if tree = waitSilent(); tree == nil {
				return
			}
			st = cl.Stats()
			fmt.Printf("requiet: silent tree root=%d after %d joins/%d crashes, %d frames sent; still serving\n",
				tree.Root(), st.Joins, st.Crashes, st.FramesSent)
			if err := publishDir(); err != nil {
				fmt.Fprintln(os.Stderr, "sstsim:", err)
				return
			}
		}

		if treeOut != "" {
			var b strings.Builder
			for _, v := range cl.Graph().Nodes() {
				fmt.Fprintf(&b, "%d %d\n", v, tree.Parent(v))
			}
			if err := writeFileAtomic(treeOut, b.String()); err != nil {
				fmt.Fprintln(os.Stderr, "sstsim:", err)
				return
			}
		}
	}()

	<-ctx.Done()
	<-served
	st := cl.Stats()
	fmt.Printf("shut down: %d frames sent (%d rejected), %d heartbeats applied\n",
		st.FramesSent, st.RxRejected, st.HeartbeatsApplied)
}

// pickVictims selects up to k crash victims from the live cluster —
// never the root (the crawler's stable seed), and only nodes whose
// cumulative removal keeps the survivors connected — and records each
// victim's adjacency so the same identity can rejoin over the same
// links.
func pickVictims(cl *cluster.Cluster, k int) ([]graph.NodeID, map[graph.NodeID][]graph.Edge) {
	g := cl.Graph()
	root := g.MinID()
	survivors := g.Clone()
	var victims []graph.NodeID
	adj := make(map[graph.NodeID][]graph.Edge)
	for _, v := range g.Nodes() {
		if len(victims) == k {
			break
		}
		if v == root {
			continue
		}
		trial := survivors.Clone()
		trial.RemoveNode(v)
		if !trial.Connected() {
			continue
		}
		var es []graph.Edge
		for _, u := range g.Neighbors(v) {
			w, _ := g.EdgeWeight(v, u)
			es = append(es, graph.Edge{U: v, V: u, W: w})
		}
		adj[v] = es
		victims = append(victims, v)
		survivors = trial
	}
	return victims, adj
}

// writeFileAtomic publishes content under path via a same-directory
// rename, so concurrent readers (the CI waiter, sscrawl) never see a
// partial file.
func writeFileAtomic(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runCluster is the message-passing demo: deploy the always-on
// algorithm as a cluster of goroutine-actors over the deterministic
// in-process transport wrapped in seeded faults, watch the heartbeat
// exchange converge to the silent tree, then serve a packet batch
// end-to-end as data frames over the same links.
func runCluster(algName string, g *graph.Graph, seed int64, loss float64) {
	alg := alwaysOn(algName, "-cluster")
	rng := rand.New(rand.NewSource(seed))
	ft := cluster.NewFaultTransport(cluster.NewChanTransport(), cluster.FaultConfig{
		Seed: seed + 1, Loss: loss, Dup: loss / 2, Corrupt: loss / 2, Delay: 2 * loss, MaxDelayTicks: 4,
	})
	cl, err := cluster.New(g, alg, ft, cluster.Config{StalenessTTL: 24})
	if err != nil {
		fatal(err)
	}
	defer cl.Stop()
	gw := cluster.NewGateway(cl)
	cl.InitArbitrary(rng)
	fmt.Printf("cluster: %d actors, %s codec, faults loss=%.2f dup=%.2f corrupt=%.2f delay=%.2f\n",
		cl.Nodes(), cl.Codec().Name(), loss, loss/2, loss/2, 2*loss)

	for !func() bool { _, q := cl.RunUntilQuiet(200, 12); return q }() {
		st := cl.Stats()
		fmt.Printf("  tick %-5d changed=%-3d frames=%d rejected=%d labeled=%d/%d\n",
			cl.Ticks(), cl.ChangedLastTick(), st.FramesSent, st.RxRejected,
			gw.Labeling().Covered(), g.N())
		if cl.Ticks() > 100_000 {
			fatal(fmt.Errorf("no convergence within %d ticks", cl.Ticks()))
		}
	}
	st := cl.Stats()
	fs := ft.Stats()
	fmt.Printf("quiet after %d ticks: %d frames (%d rejected by checksum/staleness), faults lost=%d dup=%d corrupted=%d delayed=%d\n",
		cl.Ticks(), st.FramesSent, st.RxRejected, fs.Lost, fs.Duplicated, fs.Corrupted, fs.Delayed)

	net, err := cl.Mirror()
	if err != nil {
		fatal(err)
	}
	if !net.Silent() {
		fatal(fmt.Errorf("quiet cluster projects to a non-silent configuration"))
	}
	tree, err := extractAlwaysOn(algName, net)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("silent tree: root=%d height=%d max-degree=%d, register bound %d bits\n",
		tree.Root(), trees.NewIndex(tree).Height(), tree.MaxDegree(), cl.MaxRegisterBits())

	batch := 4 * g.N()
	gw.Launch(routing.UniformPairs(g.Nodes(), batch, rng))
	for i := 0; i < 8*g.N() && gw.Outstanding() > 0; i++ {
		cl.Tick()
	}
	gw.Expire()
	gws := gw.Stats()
	fmt.Printf("data plane over the faulty links: %d/%d delivered (%.1f%%), mean %.1f hops, %d lost in transit\n",
		gws.Delivered, gws.Launched, 100*gws.DeliveryRate(), gws.MeanHops(), gws.Lost)
}

// runChurn is the live-topology demo: stabilize the substrate, then
// apply a seeded churn schedule — joins, leaves, link flaps,
// partitions, heals, corruption — op by op with bounded repair windows
// and a packet cohort flying over the incrementally maintained
// labeling, and report the re-stabilized tree plus serving quality on
// the final graph.
func runChurn(algName string, g *graph.Graph, ops int, seed int64, maxMoves int) {
	alg := alwaysOn(algName, "-churn")
	rng := rand.New(rand.NewSource(seed))
	net, err := runtime.NewNetwork(g, alg)
	if err != nil {
		fatal(err)
	}
	net.InitArbitrary(rng)
	res, err := net.Run(runtime.Synchronous(), maxMoves)
	if err != nil {
		fatal(err)
	}
	if !res.Silent {
		fatal(fmt.Errorf("substrate not silent after %d moves", res.Moves))
	}
	fmt.Printf("substrate %s: silent in %d rounds (%d moves)\n", alg.Name(), res.Rounds, res.Moves)

	// Incremental labeling + live router.
	parents := make([]graph.NodeID, net.Dense().Slots())
	parentOf := func(s runtime.State) graph.NodeID {
		if algName == "spanning" {
			if ss, ok := s.(spanning.State); ok {
				return ss.Parent
			}
		} else if ss, ok := switching.RegOf(s); ok {
			return ss.Parent
		}
		return routing.NoParent
	}
	for i := range parents {
		parents[i] = parentOf(net.StateAt(i))
	}
	lb := routing.NewLiveLabeler(g, parents)
	net.AddStateListener(func(v graph.NodeID, old, new runtime.State) {
		lb.SetParent(v, parentOf(new))
	})
	net.AddTopologyListener(lb.ApplyTopo)
	router := routing.NewRouter(g, lb.Labeling(), routing.Options{})

	schedule := cert.GenerateChurnSchedule(g, ops, seed+1)
	survivors := cert.Survivors(g, schedule)
	flight := routing.NewFlight(routing.UniformPairs(survivors, 32, rng))
	movesBefore := net.Moves()
	for oi, op := range schedule {
		if _, err := cert.ApplyChurnOp(net, op, rng); err != nil {
			fatal(fmt.Errorf("op %d (%s): %w", oi, op, err))
		}
		if _, err := net.Run(runtime.Synchronous(), net.Moves()+200); err != nil {
			fatal(err)
		}
		router.SetLabeling(lb.Labeling())
		flight.Advance(router, 2)
		fmt.Printf("  op %-2d %-40s n=%-4d m=%-5d labeled=%d/%d\n",
			oi, op, g.N(), g.M(), lb.Labeling().Covered(), g.N())
	}
	res, err = net.Run(runtime.Synchronous(), net.Moves()+maxMoves)
	if err != nil {
		fatal(err)
	}
	if !res.Silent {
		fatal(fmt.Errorf("no re-stabilization on the final graph"))
	}
	router.SetLabeling(lb.Labeling())
	flight.Flush(router)
	fs := flight.Stats()
	fmt.Printf("re-stabilized: %d repair moves, labeling complete=%v, cohort %d/%d delivered (%d dropped mid-churn)\n",
		net.Moves()-movesBefore, lb.Labeling().Complete(), fs.Delivered(), fs.Sent, fs.Dropped)
	post, err := routing.Drive(router, routing.UniformPairs(g.Nodes(), 4*g.N(), rng), routing.DriveOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("post-churn traffic: %v\n", post)
}

// runRoute stabilizes the spanning substrate from the post-reset
// configuration, labels the tree with coordinates, and drives the
// workload, printing the serving metrics.
func runRoute(g *graph.Graph, workload string, packets int, rng *rand.Rand) {
	net, err := runtime.NewNetwork(g, spanning.Algorithm{})
	if err != nil {
		fatal(err)
	}
	spanning.InitSelfRoot(net)
	res, err := net.Run(runtime.Synchronous(), 200_000_000)
	if err != nil {
		fatal(err)
	}
	if !res.Silent {
		fatal(fmt.Errorf("substrate not silent after %d moves", res.Moves))
	}
	tree, err := spanning.ExtractTree(net)
	if err != nil {
		fatal(err)
	}
	lab := routing.Label(tree)
	fmt.Printf("substrate: silent in %d rounds (%d moves); root=%d height=%d; registers %d bits, coords ≤ %d bits\n",
		res.Rounds, res.Moves, tree.Root(), height(tree), res.MaxRegisterBits, lab.MaxLabelBits())

	var pairs []routing.Pair
	switch workload {
	case "uniform":
		pairs = routing.UniformPairs(g.Nodes(), packets, rng)
	case "hotspot":
		pairs = routing.HotspotPairs(g.Nodes(), tree.Root(), packets, 0.8, rng)
	case "allpairs":
		pairs = routing.AllPairsSample(g.Nodes(), packets, rng)
	default:
		fatal(fmt.Errorf("unknown workload %q", workload))
	}
	r := routing.NewRouter(g, lab, routing.Options{})
	stats, err := routing.Drive(r, pairs, routing.DriveOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("traffic (%s): %v\n", workload, stats)
	if stats.ExactSources > 0 {
		fmt.Printf("stretch sampled over %d sources (exact shortest paths via per-source BFS)\n", stats.ExactSources)
	}
}

// runRouteInterplay corrupts registers under live traffic and reports
// the reconvergence behaviour for each constrained-tree substrate. The
// -packets budget sizes the pre/post measurement batches.
func runRouteInterplay(g *graph.Graph, faults, packets int, seed int64) {
	batch := packets
	if batch > 100_000 {
		batch = 100_000 // pre/post batches; the default -packets is fine
	}
	for _, sub := range []routing.Substrate{routing.SubstrateBFS, routing.SubstrateMST, routing.SubstrateMDST} {
		rep, err := routing.RunInterplay(g, routing.InterplayConfig{
			Substrate:    sub,
			Faults:       faults,
			BatchPackets: batch,
			Seed:         seed,
		})
		if err != nil {
			fatal(fmt.Errorf("%s substrate: %w", sub, err))
		}
		fmt.Printf("\nsubstrate %s (height %d→%d, max-degree %d→%d):\n",
			sub, rep.PreHeight, rep.PostHeight, rep.PreMaxDegree, rep.PostMaxDegree)
		fmt.Printf("  pre-fault:  %v\n", rep.Pre)
		fmt.Printf("  faults: %d registers corrupted under %d in-flight packets\n", faults, rep.InFlight.Sent)
		fmt.Printf("  reconverge: %d moves over %d windows, %d register writes observed\n",
			rep.ReconvergeMoves, rep.Windows, rep.TopologyWrites)
		fmt.Printf("  in-flight:  delivered %d during repair + %d after, looped %d, dropped %d, stalled windows %d\n",
			rep.InFlight.DeliveredDuring, rep.InFlight.DeliveredAfter,
			rep.InFlight.Looped, rep.InFlight.Dropped, rep.InFlight.StallWindows)
		fmt.Printf("  post-recovery: %v\n", rep.Post)
	}
}

func runEngine(name string, g *graph.Graph, rng *rand.Rand) {
	var task core.Task
	switch name {
	case "mst":
		task = mst.Task{}
	case "mdst":
		task = mdst.Task{}
	}
	final, trace, err := core.RunDistributed(g, task, core.EngineOptions{Rng: rng})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stabilized: rounds=%d moves=%d improvements=%d\n",
		trace.Rounds, trace.Moves, trace.Improvements)
	fmt.Printf("registers: substrate=%d bits, task labels=%d bits\n",
		trace.MaxRegisterBits, trace.MaxLabelBits)
	fmt.Printf("potential trajectory: %v\n", trace.Potentials)
	switch name {
	case "mst":
		exact, err := mst.IsMST(final, g)
		if err != nil {
			fatal(err)
		}
		w, _ := final.Weight(g)
		fmt.Printf("result: exact MST = %v, weight = %d\n", exact, w)
	case "mdst":
		fr, err := mdst.IsFRTree(g, final)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: FR-tree = %v, degree = %d (≤ OPT+1)\n", fr, final.MaxDegree())
	}
}

func runRules(name string, g *graph.Graph, schedName string, rng *rand.Rand, faults, maxMoves int) {
	var alg runtime.Algorithm
	switch name {
	case "spanning":
		alg = spanning.Algorithm{}
	case "switching":
		alg = switching.Algorithm{}
	case "bfs":
		alg = bfs.Algorithm{}
	}
	sched, err := parseSched(schedName, rng)
	if err != nil {
		fatal(err)
	}
	net, err := runtime.NewNetwork(g, alg)
	if err != nil {
		fatal(err)
	}
	net.InitArbitrary(rng)
	res, err := net.Run(sched, maxMoves)
	if err != nil {
		fatal(err)
	}
	report(net, res, name)
	for i := 0; i < faults; i++ {
		victims := runtime.Corrupt(net, 1+rng.Intn(3), rng)
		fmt.Printf("\ninjected faults at nodes %v\n", victims)
		res, err = net.Run(sched, maxMoves)
		if err != nil {
			fatal(err)
		}
		report(net, res, name)
	}
}

func report(net *runtime.Network, res runtime.Result, name string) {
	fmt.Printf("stabilized: silent=%v rounds=%d moves=%d max-register=%d bits\n",
		res.Silent, res.Rounds, res.Moves, res.MaxRegisterBits)
	if !res.Silent {
		return
	}
	switch name {
	case "spanning":
		t, err := spanning.ExtractTree(net)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tree: root=%d height=%d\n", t.Root(), height(t))
	case "switching", "bfs":
		t, err := switching.ExtractTree(net, switching.RegOf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tree: root=%d height=%d BFS=%v\n",
			t.Root(), height(t), trees.IsBFSTree(t, net.Graph()))
	}
}

func height(t *trees.Tree) int {
	h := 0
	for _, d := range t.Depths() {
		if d > h {
			h = d
		}
	}
	return h
}

func parseGraph(spec string, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	rng := rand.New(rand.NewSource(seed))
	atoi := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			fatal(fmt.Errorf("bad integer %q in graph spec", s))
		}
		return v
	}
	atof := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fatal(fmt.Errorf("bad float %q in graph spec", s))
		}
		return v
	}
	switch parts[0] {
	case "ring":
		return graph.Ring(atoi(parts[1])), nil
	case "path":
		return graph.Path(atoi(parts[1])), nil
	case "star":
		return graph.Star(atoi(parts[1])), nil
	case "complete":
		return graph.Complete(atoi(parts[1])), nil
	case "grid":
		return graph.Grid(atoi(parts[1]), atoi(parts[2])), nil
	case "lollipop":
		return graph.Lollipop(atoi(parts[1]), atoi(parts[2])), nil
	case "random":
		return graph.RandomConnected(atoi(parts[1]), atof(parts[2]), rng), nil
	case "geometric":
		return graph.RandomGeometric(atoi(parts[1]), atof(parts[2]), rng), nil
	}
	return nil, fmt.Errorf("unknown graph family %q", parts[0])
}

func parseSched(name string, rng *rand.Rand) (runtime.Scheduler, error) {
	switch name {
	case "central":
		return runtime.Central(), nil
	case "synchronous":
		return runtime.Synchronous(), nil
	case "adversarial":
		return runtime.AdversarialUnfair(), nil
	case "roundrobin":
		return runtime.RoundRobin(), nil
	case "random":
		return runtime.RandomSubset(rng), nil
	}
	return nil, fmt.Errorf("unknown scheduler %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sstsim:", err)
	os.Exit(1)
}
