// Command sstsim runs one self-stabilization simulation: pick an
// algorithm, a graph family, and a scheduler; start from an arbitrary
// (adversarial) configuration; watch the system converge to a silent
// legal configuration; optionally inject faults and watch it recover.
//
// Usage examples:
//
//	sstsim -alg bfs -graph random:40:0.1 -sched adversarial -faults 5
//	sstsim -alg mst -graph geometric:24:0.35
//	sstsim -alg mdst -graph lollipop:6:8 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"silentspan/internal/bfs"
	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

func main() {
	algName := flag.String("alg", "bfs", "algorithm: spanning | switching | bfs | mst | mdst")
	graphSpec := flag.String("graph", "random:30:0.15", "graph: ring:n | path:n | grid:r:c | complete:n | star:n | lollipop:k:t | random:n:p | geometric:n:r")
	schedName := flag.String("sched", "central", "scheduler: central | synchronous | adversarial | roundrobin | random")
	seed := flag.Int64("seed", 1, "random seed")
	faults := flag.Int("faults", 0, "registers to corrupt after stabilization (rule-based algorithms)")
	maxMoves := flag.Int("maxmoves", 10_000_000, "move budget")
	flag.Parse()

	g, err := parseGraph(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("graph: %s (n=%d, m=%d)\n", *graphSpec, g.N(), g.M())

	switch *algName {
	case "mst", "mdst":
		runEngine(*algName, g, rng)
	case "spanning", "switching", "bfs":
		runRules(*algName, g, *schedName, rng, *faults, *maxMoves)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algName))
	}
}

func runEngine(name string, g *graph.Graph, rng *rand.Rand) {
	var task core.Task
	switch name {
	case "mst":
		task = mst.Task{}
	case "mdst":
		task = mdst.Task{}
	}
	final, trace, err := core.RunDistributed(g, task, core.EngineOptions{Rng: rng})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stabilized: rounds=%d moves=%d improvements=%d\n",
		trace.Rounds, trace.Moves, trace.Improvements)
	fmt.Printf("registers: substrate=%d bits, task labels=%d bits\n",
		trace.MaxRegisterBits, trace.MaxLabelBits)
	fmt.Printf("potential trajectory: %v\n", trace.Potentials)
	switch name {
	case "mst":
		exact, err := mst.IsMST(final, g)
		if err != nil {
			fatal(err)
		}
		w, _ := final.Weight(g)
		fmt.Printf("result: exact MST = %v, weight = %d\n", exact, w)
	case "mdst":
		fr, err := mdst.IsFRTree(g, final)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: FR-tree = %v, degree = %d (≤ OPT+1)\n", fr, final.MaxDegree())
	}
}

func runRules(name string, g *graph.Graph, schedName string, rng *rand.Rand, faults, maxMoves int) {
	var alg runtime.Algorithm
	switch name {
	case "spanning":
		alg = spanning.Algorithm{}
	case "switching":
		alg = switching.Algorithm{}
	case "bfs":
		alg = bfs.Algorithm{}
	}
	sched, err := parseSched(schedName, rng)
	if err != nil {
		fatal(err)
	}
	net, err := runtime.NewNetwork(g, alg)
	if err != nil {
		fatal(err)
	}
	net.InitArbitrary(rng)
	res, err := net.Run(sched, maxMoves)
	if err != nil {
		fatal(err)
	}
	report(net, res, name)
	for i := 0; i < faults; i++ {
		victims := runtime.Corrupt(net, 1+rng.Intn(3), rng)
		fmt.Printf("\ninjected faults at nodes %v\n", victims)
		res, err = net.Run(sched, maxMoves)
		if err != nil {
			fatal(err)
		}
		report(net, res, name)
	}
}

func report(net *runtime.Network, res runtime.Result, name string) {
	fmt.Printf("stabilized: silent=%v rounds=%d moves=%d max-register=%d bits\n",
		res.Silent, res.Rounds, res.Moves, res.MaxRegisterBits)
	if !res.Silent {
		return
	}
	switch name {
	case "spanning":
		t, err := spanning.ExtractTree(net)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tree: root=%d height=%d\n", t.Root(), height(t))
	case "switching", "bfs":
		t, err := switching.ExtractTree(net, switching.RegOf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tree: root=%d height=%d BFS=%v\n",
			t.Root(), height(t), trees.IsBFSTree(t, net.Graph()))
	}
}

func height(t *trees.Tree) int {
	h := 0
	for _, d := range t.Depths() {
		if d > h {
			h = d
		}
	}
	return h
}

func parseGraph(spec string, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	rng := rand.New(rand.NewSource(seed))
	atoi := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			fatal(fmt.Errorf("bad integer %q in graph spec", s))
		}
		return v
	}
	atof := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fatal(fmt.Errorf("bad float %q in graph spec", s))
		}
		return v
	}
	switch parts[0] {
	case "ring":
		return graph.Ring(atoi(parts[1])), nil
	case "path":
		return graph.Path(atoi(parts[1])), nil
	case "star":
		return graph.Star(atoi(parts[1])), nil
	case "complete":
		return graph.Complete(atoi(parts[1])), nil
	case "grid":
		return graph.Grid(atoi(parts[1]), atoi(parts[2])), nil
	case "lollipop":
		return graph.Lollipop(atoi(parts[1]), atoi(parts[2])), nil
	case "random":
		return graph.RandomConnected(atoi(parts[1]), atof(parts[2]), rng), nil
	case "geometric":
		return graph.RandomGeometric(atoi(parts[1]), atof(parts[2]), rng), nil
	}
	return nil, fmt.Errorf("unknown graph family %q", parts[0])
}

func parseSched(name string, rng *rand.Rand) (runtime.Scheduler, error) {
	switch name {
	case "central":
		return runtime.Central(), nil
	case "synchronous":
		return runtime.Synchronous(), nil
	case "adversarial":
		return runtime.AdversarialUnfair(), nil
	case "roundrobin":
		return runtime.RoundRobin(), nil
	case "random":
		return runtime.RandomSubset(rng), nil
	}
	return nil, fmt.Errorf("unknown scheduler %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sstsim:", err)
	os.Exit(1)
}
