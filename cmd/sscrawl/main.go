// Command sscrawl reconstructs a running cluster's spanning tree by
// crawling its per-node admin API, hop by hop, from a single seed
// address — the operator's view of a deployment, with no access to the
// coordinator. Point it at any node of an `sstsim -serve` run:
//
//	sscrawl -addr 127.0.0.1:40001
//	sscrawl -addr 127.0.0.1:40001 -expect-n 64 -diff /tmp/tree.txt
//	sscrawl -addr 127.0.0.1:40001 -json
//
// With -diff, the crawled parent map is compared edge-by-edge against
// a ground-truth file (one "child parent" line per node, parent 0 for
// the root — the format `sstsim -serve -tree-out` writes); any
// divergence, unreachable node, or -expect-n mismatch exits nonzero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/ops"
)

func main() {
	addr := flag.String("addr", "", "seed admin address (host:port) of any node; required")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout (the no-hang bound on partitioned clusters)")
	expectN := flag.Int("expect-n", 0, "fail unless exactly this many nodes are crawled (0 = no check)")
	diffFile := flag.String("diff", "", "compare the crawled parent map against this ground-truth file (child parent per line, 0 = root)")
	asJSON := flag.Bool("json", false, "emit the full crawl report as JSON")
	flag.Parse()
	if *addr == "" {
		fatal(fmt.Errorf("-addr is required (any node's admin socket)"))
	}

	client := ops.NewHTTPClient(*timeout)
	rep, err := ops.CrawlAddr(client, *addr)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		self := rep.Nodes[rep.Start]
		fmt.Printf("crawled %d nodes from %s (node %d, %s/%s)\n",
			rep.Visited(), *addr, rep.Start, self.Algorithm, self.Codec)
		fmt.Printf("roots: %v, %d tree edges\n", rep.Roots(), len(rep.Edges()))
		for id, msg := range rep.Errors {
			fmt.Printf("unreachable: node %d: %s\n", id, msg)
		}
	}

	failed := false
	if len(rep.Errors) != 0 {
		fmt.Fprintf(os.Stderr, "sscrawl: %d discovered nodes unreachable\n", len(rep.Errors))
		failed = true
	}
	if *expectN > 0 && rep.Visited() != *expectN {
		fmt.Fprintf(os.Stderr, "sscrawl: crawled %d nodes, expected %d\n", rep.Visited(), *expectN)
		failed = true
	}
	if *diffFile != "" {
		want, err := readParentMap(*diffFile)
		if err != nil {
			fatal(err)
		}
		if diffs := rep.DiffParents(want); len(diffs) != 0 {
			for _, d := range diffs {
				fmt.Fprintln(os.Stderr, "sscrawl: diff:", d)
			}
			failed = true
		} else if !*asJSON {
			fmt.Printf("crawl matches the ground-truth tree (%d nodes)\n", len(want))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// readParentMap parses a ground-truth tree file: one "child parent"
// pair per line, parent 0 marking the root. Blank lines and #-comments
// are ignored.
func readParentMap(path string) (map[graph.NodeID]graph.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	want := make(map[graph.NodeID]graph.NodeID)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'child parent', got %q", path, line, text)
		}
		child, err1 := strconv.Atoi(fields[0])
		parent, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: non-integer pair %q", path, line, text)
		}
		want[graph.NodeID(child)] = graph.NodeID(parent)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return want, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sscrawl:", err)
	os.Exit(1)
}
