// Command sscert is the adversarial certification harness's CLI: it
// hunts for counterexamples to the reproduction's headline claims and
// emits machine-readable certificates CI can diff against committed
// bounds.
//
// Exhaustive model checking (every connected graph up to isomorphism on
// ≤ maxn nodes, plus the named pathological families, × five algorithms
// × seven daemons × sampled and exhaustive initial configurations):
//
//	sscert -exhaustive -maxn 6
//
// Live-topology churn certification (seeded join/leave/partition/heal
// schedules × five algorithms × seven daemons on small graphs, with a
// packet cohort flying over the incrementally maintained labeling;
// every run must re-stabilize to a spec-correct tree of the final
// graph):
//
//	sscert -churn -churn-maxn 6
//
// Message-passing cluster certification (seeded loss/dup/reorder/
// corruption fault profiles on the deterministic channel transport ×
// five algorithms on small graphs; every run must reach quiet, project
// to a silent spec-correct configuration, and serve a packet batch
// end-to-end over the same transport):
//
//	sscert -cluster -cluster-maxn 6
//
// Add -cluster-churn N to inject N membership-churn operations (joins,
// leaves, crashes, link flaps) into every cluster run mid-flight; the
// post-quiet battery then certifies the final graph:
//
//	sscert -cluster -cluster-maxn 6 -cluster-churn 8
//
// Chaos campaign (fault bursts + register wipes + weight churn + live
// traffic over the recovering tree on a large random graph):
//
//	sscert -chaos -n 10000 -substrate bfs -sched greedy-stretch \
//	       -out chaos-cert.json -bounds internal/cert/testdata/chaos_bounds.json
//
// Exit status is nonzero when a counterexample is found or a bound is
// violated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"silentspan/internal/bench"
	"silentspan/internal/cert"
)

func main() {
	var (
		exhaustive = flag.Bool("exhaustive", false, "run the exhaustive small-graph model checker")
		maxn       = flag.Int("maxn", 5, "model-check every connected graph on up to this many nodes")
		samples    = flag.Int("samples", 3, "arbitrary-init samples per (graph, algorithm, daemon)")
		exhinit    = flag.Int("exhinit", 3, "exhaustive initial-state enumeration up to this n (spanning substrate)")
		families   = flag.Bool("families", true, "include the named pathological families (paths, stars, lollipops, dumbbells)")

		churn     = flag.Bool("churn", false, "run the live-topology churn certification campaign")
		churnMaxN = flag.Int("churn-maxn", 6, "churn graphs on 3..this many nodes")
		schedules = flag.Int("schedules", 2, "churn schedules per (graph, algorithm, daemon)")
		churnLen  = flag.Int("churn-len", 10, "churn ops per schedule")

		clusterRun   = flag.Bool("cluster", false, "run the message-passing cluster certification campaign")
		clusterMaxN  = flag.Int("cluster-maxn", 6, "cluster graphs on 3..this many nodes")
		clusterRuns  = flag.Int("cluster-runs", 1, "cluster runs per (graph, algorithm, fault profile)")
		clusterChurn = flag.Int("cluster-churn", 0, "membership-churn ops (join/leave/crash/link flap) injected per cluster run; 0 disables")

		chaos     = flag.Bool("chaos", false, "run a randomized chaos campaign")
		n         = flag.Int("n", 10000, "chaos graph size")
		p         = flag.Float64("p", 0, "chaos edge probability (default 3/n)")
		substrate = flag.String("substrate", "bfs", "chaos substrate: bfs|mst|mdst")
		sched     = flag.String("sched", "random-subset", "chaos daemon (central|synchronous|round-robin|adversarial-unfair|greedy-stretch|random-central|random-subset)")
		bursts    = flag.Int("bursts", 5, "chaos fault bursts")

		seed   = flag.Int64("seed", 1, "base random seed")
		out    = flag.String("out", "", "write the certificate JSON here")
		bounds = flag.String("bounds", "", "diff the chaos certificate against this committed bounds file")
		quiet  = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()
	if !*exhaustive && !*chaos && !*churn && !*clusterRun {
		fmt.Fprintln(os.Stderr, "sscert: nothing to do; pass -exhaustive, -churn, -cluster and/or -chaos")
		flag.Usage()
		os.Exit(2)
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// The combined certificate file: either section may be absent. Both
	// runners return whatever partial report they built alongside an
	// error, and the write below happens on every path — a failed
	// campaign is exactly when the per-burst records matter most.
	var file struct {
		Exhaustive *cert.ExhaustiveReport `json:"exhaustive,omitempty"`
		Churn      *cert.ChurnReport      `json:"churn,omitempty"`
		Cluster    *cert.ClusterReport    `json:"cluster,omitempty"`
		Chaos      *cert.Certificate      `json:"chaos,omitempty"`
	}
	failed := false

	if *exhaustive {
		rep, err := cert.RunExhaustive(cert.ExhaustiveConfig{
			MaxN:               *maxn,
			Samples:            *samples,
			ExhaustiveInitMaxN: *exhinit,
			SkipFamilies:       !*families,
			Seed:               *seed,
		}, logf)
		file.Exhaustive = rep
		if err != nil {
			fmt.Fprintf(os.Stderr, "sscert: exhaustive: %v\n", err)
			failed = true
		}
		if rep != nil {
			bench.ExhaustiveTable(rep).Fprint(os.Stdout)
			if rep.Certified() && err == nil {
				fmt.Printf("CERTIFIED: %d graphs, %d runs, %d exhaustive inits, zero counterexamples\n",
					rep.Graphs, rep.Runs, rep.ExhaustiveInits)
			} else if !rep.Certified() {
				fmt.Printf("FALSIFIED: %d counterexamples\n", len(rep.Counterexamples))
				failed = true
			}
		}
	}

	if *churn {
		rep, err := cert.RunChurn(cert.ChurnConfig{
			MaxN:      *churnMaxN,
			Schedules: *schedules,
			Length:    *churnLen,
			Seed:      *seed,
		}, logf)
		file.Churn = rep
		if err != nil {
			fmt.Fprintf(os.Stderr, "sscert: churn: %v\n", err)
			failed = true
		}
		if rep != nil {
			bench.ChurnTable(rep).Fprint(os.Stdout)
			if rep.Certified() && err == nil {
				fmt.Printf("CERTIFIED: %d graphs, %d runs, %d mutations, cohort %d/%d, zero counterexamples\n",
					rep.Graphs, rep.Runs, rep.Mutations, rep.PacketsArrived, rep.PacketsSent)
			} else if !rep.Certified() {
				fmt.Printf("FALSIFIED: %d counterexamples\n", len(rep.Counterexamples))
				failed = true
			}
		}
	}

	if *clusterRun {
		rep, err := cert.RunCluster(cert.ClusterConfig{
			MaxN:     *clusterMaxN,
			Runs:     *clusterRuns,
			ChurnOps: *clusterChurn,
			Seed:     *seed,
		}, logf)
		file.Cluster = rep
		if err != nil {
			fmt.Fprintf(os.Stderr, "sscert: cluster: %v\n", err)
			failed = true
		}
		if rep != nil {
			bench.ClusterTable(rep).Fprint(os.Stdout)
			if rep.Certified() && err == nil {
				fmt.Printf("CERTIFIED: %d graphs, %d runs, %d frames, packets %d/%d, zero counterexamples\n",
					rep.Graphs, rep.Runs, rep.FramesSent, rep.PacketsArrived, rep.PacketsSent)
				if *clusterChurn > 0 {
					fmt.Printf("  churn: %d joins, %d leaves, %d crashes survived\n",
						rep.Joins, rep.Leaves, rep.Crashes)
				}
			} else if !rep.Certified() {
				fmt.Printf("FALSIFIED: %d counterexamples\n", len(rep.Counterexamples))
				failed = true
			}
		}
	}

	if *chaos {
		c, err := cert.RunChaos(cert.ChaosConfig{
			N: *n, EdgeProb: *p,
			Substrate: *substrate,
			Scheduler: *sched,
			Bursts:    *bursts,
			Seed:      *seed,
		}, logf)
		file.Chaos = c
		if err != nil {
			fmt.Fprintf(os.Stderr, "sscert: chaos: %v\n", err)
			failed = true
		}
		if c != nil {
			bench.ChaosTable(c).Fprint(os.Stdout)
			if *bounds != "" && err == nil {
				b, berr := cert.LoadBounds(*bounds)
				if berr != nil {
					fmt.Fprintf(os.Stderr, "sscert: %v\n", berr)
					os.Exit(1)
				}
				if violations := b.Check(c); len(violations) > 0 {
					for _, v := range violations {
						fmt.Printf("BOUND VIOLATED: %s\n", v)
					}
					failed = true
				} else {
					fmt.Println("WITHIN BOUNDS: certificate fits the committed envelope")
				}
			}
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sscert: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sscert: %v\n", err)
			os.Exit(1)
		}
		logf("certificate written to %s", *out)
	}
	if failed {
		os.Exit(1)
	}
}
