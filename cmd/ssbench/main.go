// Command ssbench regenerates every experiment table of the
// reproduction (E1–E13 plus the A-series ablations, see DESIGN.md §5):
// one table per claim-level figure of the paper, plus the routing
// serving-layer measurements (E9/E10/A5), the engine scale table
// (E11), the live-topology churn throughput table (E12), and the
// message-passing cluster convergence/throughput table (E13), and the
// delta-heartbeat wire-cost comparison (E14), and the flight-recorder
// overhead A/B (E15).
//
// Usage:
//
//	ssbench [-quick] [-seed N] [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"silentspan/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps (seconds instead of minutes)")
	seed := flag.Int64("seed", 1, "base random seed")
	only := flag.String("only", "", "run a single experiment (E1..E15, A1..A5)")
	flag.Parse()

	type experiment struct {
		name string
		run  func() (*bench.Table, error)
	}

	e1n := []int{16, 32, 64, 128, 256}
	e2n := []int{16, 32, 64, 128, 256, 512}
	e3n := []int{16, 24, 32, 48, 64}
	e4n := []int{10, 14, 18, 24}
	e5n := []int{8, 12, 16, 20}
	e6n := []int{5, 6, 7, 8}
	e7f := []int{1, 2, 4, 8, 16}
	e7n, e8n := 32, 16
	a1n := []int{16, 32, 64}
	e9n := []int{100, 1000, 10000}
	e9pkts := 100_000
	a5n := []int{100, 1000}
	a5pkts := 20_000
	e10n, e10f := 32, 4
	e11n := []int{100_000, 300_000, 1_000_000}
	e11pkts := 50_000
	e12n := []int{100_000, 300_000}
	e12muts, e12batch, e12pkts := 30_000, 200, 10_000
	e13n := []int{10_000, 30_000, 100_000}
	e13pkts := 20_000
	e14n := []int{10_000, 30_000, 100_000}
	e14pkts, e14idle := 20_000, 64
	e15n, e15win, e15reps := 10_000, 64, 5
	if *quick {
		a1n = []int{12, 24}
		e1n = []int{16, 32, 64}
		e2n = []int{16, 64, 256}
		e3n = []int{12, 20, 28}
		e4n = []int{10, 14}
		e5n = []int{8, 12}
		e6n = []int{5, 6, 7}
		e7f = []int{1, 2, 4}
		e7n, e8n = 20, 14
		e9n = []int{100, 1000}
		e9pkts = 10_000
		a5n = []int{100}
		a5pkts = 5_000
		e10n = 24
		e11n = []int{100_000}
		e11pkts = 10_000
		e12n = []int{100_000}
		e12muts, e12pkts = 10_000, 5_000
		e13n = []int{10_000}
		e13pkts = 5_000
		e14n = []int{10_000}
		e14pkts = 5_000
		e15n, e15win, e15reps = 2_000, 32, 4
	}

	experiments := []experiment{
		{"E1", func() (*bench.Table, error) { return bench.E1Switch(e1n, *seed) }},
		{"E2", func() (*bench.Table, error) { return bench.E2NCA(e2n, *seed) }},
		{"E3", func() (*bench.Table, error) { return bench.E3BFS(e3n, *seed) }},
		{"E4", func() (*bench.Table, error) { return bench.E4MST(e4n, *seed) }},
		{"E5", func() (*bench.Table, error) { return bench.E5MDST(e5n, *seed) }},
		{"E6", func() (*bench.Table, error) { return bench.E6Verification(e6n, *seed) }},
		{"E7", func() (*bench.Table, error) { return bench.E7FaultRecovery(e7n, e7f, *seed) }},
		{"E8", func() (*bench.Table, error) { return bench.E8Potential(e8n, *seed) }},
		{"E9", func() (*bench.Table, error) { return bench.E9Routing(e9n, e9pkts, *seed) }},
		{"E10", func() (*bench.Table, error) { return bench.E10Interplay(e10n, e10f, *seed) }},
		{"E11", func() (*bench.Table, error) { return bench.E11Scale(e11n, e11pkts, *seed) }},
		{"E12", func() (*bench.Table, error) { return bench.E12Churn(e12n, e12muts, e12batch, e12pkts, *seed) }},
		{"E13", func() (*bench.Table, error) { return bench.E13Cluster(e13n, e13pkts, *seed) }},
		{"E14", func() (*bench.Table, error) { return bench.E14DeltaWire(e14n, e14pkts, e14idle, *seed) }},
		{"E15", func() (*bench.Table, error) { return bench.E15TraceOverhead(e15n, e15win, e15reps, *seed) }},
		{"A1", func() (*bench.Table, error) { return bench.A1Malleability(a1n, *seed) }},
		{"A2", func() (*bench.Table, error) { return bench.A2NCAEncoding(e2n, *seed) }},
		{"A3", func() (*bench.Table, error) { return bench.A3Schedulers(e8n, *seed) }},
		{"A4", func() (*bench.Table, error) { return bench.A4Families(*seed) }},
		{"A5", func() (*bench.Table, error) { return bench.A5Shortcut(a5n, a5pkts, *seed) }},
	}

	failed := false
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.name) {
			continue
		}
		tb, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
			failed = true
			continue
		}
		tb.Fprint(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}
