// Command sstrace reconstructs a running cluster's causal timeline
// from its flight-recorder rings: crawl the admin plane hop-by-hop
// from one seed address, fetch every node's /gettrace ring, and stitch
// the rings into a single happens-before DAG (program order within
// each ring, tx→rx edges across them). Point it at any node of an
// `sstsim -serve -trace` run:
//
//	sstrace -addr 127.0.0.1:40001
//	sstrace -addr 127.0.0.1:40001 -timeline
//	sstrace -addr 127.0.0.1:40001 -out /tmp/trace.json
//	sstrace -addr 127.0.0.1:40001 -check -expect-n 64 -ann-n 64
//
// With -check the two causal invariants run over the merged trace:
// the latest quiet announcement must have subtree-quiet reports
// covering its claimed node count in its causal past (historical
// announcements may rest on departed members' rings, which a live
// crawl cannot fetch), and every delivered packet must show a
// contiguous hop chain from launch to delivery.
// Any violation — or an -expect-n / -ann-n mismatch — exits nonzero.
// -out writes the Chrome trace_event JSON (load in chrome://tracing
// or Perfetto); -timeline prints the human-readable line-per-event
// rendering.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"silentspan/internal/ops"
)

func main() {
	addr := flag.String("addr", "", "seed admin address (host:port) of any node; required")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout (the no-hang bound on partitioned clusters)")
	timeline := flag.Bool("timeline", false, "print the merged trace as one human-readable line per event, in causal order")
	out := flag.String("out", "", "write the merged trace as Chrome trace_event JSON to this file")
	check := flag.Bool("check", false, "run the causal invariants (announce coverage, packet hop chains) and exit nonzero on violation")
	expectN := flag.Int("expect-n", 0, "fail unless exactly this many rings merge (0 = no check)")
	annN := flag.Int("ann-n", 0, "fail unless the causally latest announcement covers exactly this many nodes (0 = no check)")
	flag.Parse()
	if *addr == "" {
		fatal(fmt.Errorf("-addr is required (any node's admin socket)"))
	}

	client := ops.NewHTTPClient(*timeout)
	merged, rep, err := ops.MergeTracesAddr(client, *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("merged %d rings from %d crawled nodes: %d events, %d frame edges, %d dropped\n",
		merged.Rings, rep.Visited(), len(merged.Events), merged.FrameEdges, merged.Dropped)
	for id, msg := range rep.Errors {
		fmt.Printf("no trace from node %d: %s\n", id, msg)
	}
	if ann, ok := merged.LatestAnnounce(); ok {
		fmt.Printf("latest announcement: node %d at epoch %d covering %d nodes\n", ann.Node, ann.Epoch, ann.Arg)
	} else {
		fmt.Println("no quiet announcement recorded yet")
	}

	if *timeline {
		fmt.Print(merged.Timeline())
	}
	if *out != "" {
		if err := os.WriteFile(*out, merged.ChromeTrace(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace written to %s (open in chrome://tracing or Perfetto)\n", *out)
	}

	failed := false
	if *expectN > 0 && merged.Rings != *expectN {
		fmt.Fprintf(os.Stderr, "sstrace: merged %d rings, expected %d\n", merged.Rings, *expectN)
		failed = true
	}
	if *check {
		if merged.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "sstrace: warning: %d events overwritten in the rings; the causal past may be incomplete (raise -trace-cap)\n", merged.Dropped)
		}
		// Latest announcement only: the admin plane serves live
		// members' rings, so after churn a historical announcement's
		// supporting reports may have departed with their nodes. The
		// latest one is backed by current members and stays checkable
		// from any crawl.
		for _, v := range merged.CheckLatestAnnounceCoverage() {
			fmt.Fprintln(os.Stderr, "sstrace: announce coverage:", v)
			failed = true
		}
		for _, v := range merged.CheckPacketChains() {
			fmt.Fprintln(os.Stderr, "sstrace: packet chain:", v)
			failed = true
		}
		if !failed {
			fmt.Println("causal invariants hold: every announcement earned, every delivery chained")
		}
	}
	if *annN > 0 {
		ann, ok := merged.LatestAnnounce()
		if !ok {
			fmt.Fprintln(os.Stderr, "sstrace: no announcement in the merged trace")
			failed = true
		} else if ann.Arg != uint64(*annN) {
			fmt.Fprintf(os.Stderr, "sstrace: latest announcement covers %d nodes, expected %d\n", ann.Arg, *annN)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sstrace:", err)
	os.Exit(1)
}
