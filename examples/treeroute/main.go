// Tree-coordinate routing over a self-stabilizing spanning tree: the
// serving-layer demo. A geometric "sensor network" stabilizes a BFS
// tree; every node is labeled with its root-to-node port path
// (yggdrasil-style coordinates); packets are forwarded greedily by
// tree distance with non-tree edges as shortcuts. Mid-demo, registers
// are corrupted under live traffic: routing degrades on the decaying
// labeling, the tree silently repairs itself, and service returns to
// 100% delivery.
//
//	go run ./examples/treeroute
package main

import (
	"fmt"
	"log"
	"math/rand"

	"silentspan/internal/graph"
	"silentspan/internal/routing"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomGeometric(300, 0.11, rng)
	fmt.Printf("sensor network: n=%d m=%d\n", g.N(), g.M())

	rep, err := routing.RunInterplay(g, routing.InterplayConfig{
		Substrate: routing.SubstrateBFS,
		Faults:    6,
		InFlight:  128,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstabilized BFS substrate: height %d, max degree %d\n", rep.PreHeight, rep.PreMaxDegree)
	fmt.Printf("steady-state traffic: %v\n", rep.Pre)

	fmt.Printf("\n>>> corrupting 6 registers under %d in-flight packets <<<\n", rep.InFlight.Sent)
	fmt.Printf("reconvergence: %d moves over %d windows (%d register writes seen by the routing layer)\n",
		rep.ReconvergeMoves, rep.Windows, rep.TopologyWrites)
	fmt.Printf("in-flight fate: %d delivered during repair, %d after, %d looped, %d dropped, %d stalled windows\n",
		rep.InFlight.DeliveredDuring, rep.InFlight.DeliveredAfter,
		rep.InFlight.Looped, rep.InFlight.Dropped, rep.InFlight.StallWindows)

	fmt.Printf("\nrecovered traffic: %v\n", rep.Post)
	if rep.Post.Delivered == rep.Post.Sent {
		fmt.Println("service restored: 100% delivery over the repaired tree")
	}
}
