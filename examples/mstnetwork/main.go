// MST on a weighted backbone network (Section VI of the paper): the
// PLS-guided engine starts from arbitrary registers, builds a spanning
// tree, detects non-minimality through the Borůvka-trace labels, and
// repairs it with loop-free red-rule switches until the exact MST is
// reached — silently, with Θ(log² n)-bit labels.
//
//	go run ./examples/mstnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mst"
)

func main() {
	// A metro backbone: 18 sites, ~40 weighted links (distinct costs).
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(18, 0.2, rng)
	fmt.Printf("backbone: %d sites, %d links\n", g.N(), g.M())

	final, trace, err := core.RunDistributed(g, mst.Task{}, core.EngineOptions{
		Rng: rng,
	})
	if err != nil {
		log.Fatal(err)
	}

	exact, err := mst.IsMST(final, g)
	if err != nil {
		log.Fatal(err)
	}
	weight, err := final.Weight(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d rounds (%d improvements): exact MST = %v, total cost = %d\n",
		trace.Rounds, trace.Improvements, exact, weight)
	fmt.Printf("register sizes: substrate %d bits, Borůvka-trace labels %d bits\n",
		trace.MaxRegisterBits, trace.MaxLabelBits)
	fmt.Printf("potential trajectory (strictly decreasing): %v\n", trace.Potentials)

	// The Borůvka trace certifies minimality locally: every site checks
	// only its own label and its neighbors' labels.
	tr, err := mst.ComputeTrace(g, final)
	if err != nil {
		log.Fatal(err)
	}
	a := mst.FromTrace(final, tr)
	if err := a.Verify(g); err != nil {
		log.Fatalf("a site rejected the MST certificate: %v", err)
	}
	fmt.Printf("MST certificate verified at every site (k = %d Borůvka levels)\n", tr.K)

	// Contrast with the non-silent from-scratch distributed Borůvka.
	base, err := mst.DistributedBoruvka(g, g.MinID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (non-silent Borůvka): %d rounds, %d-bit registers, no local certificate\n",
		base.Rounds, base.RegisterBits)
}
