// Quickstart: build a silent self-stabilizing spanning tree with the
// malleable labels of Lemma 4.1, watch it stabilize from an adversarial
// configuration, corrupt it, and watch it recover.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
)

func main() {
	// A 5x5 grid network; node identities 1..25, the leader will be 1.
	g := graph.Grid(5, 5)
	net, err := runtime.NewNetwork(g, switching.Algorithm{})
	if err != nil {
		log.Fatal(err)
	}

	// Adversarial start: every register holds arbitrary garbage.
	rng := rand.New(rand.NewSource(42))
	net.InitArbitrary(rng)
	fmt.Printf("start: %d of %d nodes enabled (illegal configuration)\n",
		len(net.Enabled()), g.N())

	// Run under the unfair scheduler the paper assumes.
	res, err := net.Run(runtime.AdversarialUnfair(), 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := switching.ExtractTree(net, switching.RegOf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stabilized: silent=%v rounds=%d moves=%d root=%d registers=%d bits\n",
		res.Silent, res.Rounds, res.Moves, tree.Root(), res.MaxRegisterBits)

	// The silent configuration is locally certified: run the Lemma 4.1
	// verifier at every node.
	a, err := switching.ToAssignment(net, switching.RegOf)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Verify(g); err != nil {
		log.Fatalf("verifier rejected: %v", err)
	}
	fmt.Println("proof-labeling verifier: every node accepts")

	// Transient fault: corrupt three registers; the system detects and
	// repairs on its own — that is self-stabilization.
	victims := runtime.Corrupt(net, 3, rng)
	fmt.Printf("\ncorrupted registers at nodes %v\n", victims)
	res, err = net.Run(runtime.AdversarialUnfair(), 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: silent=%v extra-moves=%d\n", res.Silent, res.Moves)
	if err := runtime.CheckSilentStable(net); err != nil {
		log.Fatal(err)
	}
	fmt.Println("silence re-established; registers fixed until the next fault")
}
