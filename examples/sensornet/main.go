// Sensor-network MDST (the paper's motivating application, Section I-D:
// MAC protocol design for 802.15.4 sensor networks, where the data-
// gathering tree's maximum degree bounds per-node contention): build a
// spanning tree of a random geometric radio network whose degree is
// within +1 of the optimum, silently, with O(log n)-bit registers.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/trees"
)

func main() {
	// 24 sensors scattered in the unit square; radio range 0.35.
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomGeometric(24, 0.35, rng)
	fmt.Printf("radio network: %d sensors, %d links, max radio degree %d\n",
		g.N(), g.M(), g.MaxDegree())

	// A naive BFS gathering tree concentrates load near the sink.
	naive, err := trees.BFSTree(g, g.MinID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive BFS gathering tree: degree %d\n", naive.MaxDegree())

	// The PLS-guided MDST engine stabilizes on an FR-tree: degree within
	// +1 of the best any spanning tree could achieve.
	final, trace, err := core.RunDistributed(g, mdst.Task{}, core.EngineOptions{
		Rng: rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	fr, err := mdst.IsFRTree(g, final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MDST engine: degree %d, FR-certified=%v, %d rounds, %d improvements\n",
		final.MaxDegree(), fr, trace.Rounds, trace.Improvements)

	// The FR certificate is O(log n) bits per sensor; the previous
	// (OPT+1) self-stabilizing algorithm [16] needs the entire tree in
	// every register.
	m, err := mdst.Mark(g, final)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := mdst.FromMarking(g, final, m)
	if err != nil {
		log.Fatal(err)
	}
	if err := cert.Verify(g); err != nil {
		log.Fatalf("certificate rejected: %v", err)
	}
	base, err := mdst.BigMemoryMDST(g, naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certificate: %d bits/sensor (vs %d bits/sensor for the Ω(n log n) baseline — %.0fx smaller)\n",
		cert.MaxLabelBits(g.N()), base.RegisterBits,
		float64(base.RegisterBits)/float64(cert.MaxLabelBits(g.N())))
}
