// Sensor-network MDST (the paper's motivating application, Section I-D:
// MAC protocol design for 802.15.4 sensor networks, where the data-
// gathering tree's maximum degree bounds per-node contention): build a
// spanning tree of a random geometric radio network whose degree is
// within +1 of the optimum, silently, with O(log n)-bit registers.
//
// The last act exercises the live-topology mutators: a sensor's battery
// dies mid-operation (runtime.Network.RemoveNode), the gathering tree
// re-stabilizes around the hole, and the degree guarantee is re-checked
// on the shrunken radio network.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

func main() {
	// 24 sensors scattered in the unit square; radio range 0.35.
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomGeometric(24, 0.35, rng)
	fmt.Printf("radio network: %d sensors, %d links, max radio degree %d\n",
		g.N(), g.M(), g.MaxDegree())

	// A naive BFS gathering tree concentrates load near the sink.
	naive, err := trees.BFSTree(g, g.MinID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive BFS gathering tree: degree %d\n", naive.MaxDegree())

	// The PLS-guided MDST engine stabilizes on an FR-tree: degree within
	// +1 of the best any spanning tree could achieve.
	final, trace, err := core.RunDistributed(g, mdst.Task{}, core.EngineOptions{
		Rng: rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	fr, err := mdst.IsFRTree(g, final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MDST engine: degree %d, FR-certified=%v, %d rounds, %d improvements\n",
		final.MaxDegree(), fr, trace.Rounds, trace.Improvements)

	// The FR certificate is O(log n) bits per sensor; the previous
	// (OPT+1) self-stabilizing algorithm [16] needs the entire tree in
	// every register.
	m, err := mdst.Mark(g, final)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := mdst.FromMarking(g, final, m)
	if err != nil {
		log.Fatal(err)
	}
	if err := cert.Verify(g); err != nil {
		log.Fatalf("certificate rejected: %v", err)
	}
	base, err := mdst.BigMemoryMDST(g, naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certificate: %d bits/sensor (vs %d bits/sensor for the Ω(n log n) baseline — %.0fx smaller)\n",
		cert.MaxLabelBits(g.N()), base.RegisterBits,
		float64(base.RegisterBits)/float64(cert.MaxLabelBits(g.N())))

	// A sensor dies mid-operation: load the tree into a live switching
	// network, remove the node through the topology mutators, and let
	// the protocol re-stabilize around the hole.
	net, err := runtime.NewNetwork(g, switching.Algorithm{})
	if err != nil {
		log.Fatal(err)
	}
	if err := switching.InitFromTree(net, final); err != nil {
		log.Fatal(err)
	}
	victim, ok := expendableSensor(g, final)
	if !ok {
		log.Fatal("no sensor can die without splitting the radio network")
	}
	if err := net.RemoveNode(victim); err != nil {
		log.Fatal(err)
	}
	res, err := net.Run(runtime.Synchronous(), 5_000_000)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Silent {
		log.Fatalf("no re-stabilization after sensor %d died", victim)
	}
	repaired, err := switching.ExtractTree(net, switching.RegOf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor %d died: re-stabilized over %d survivors in %d rounds, gathering degree %d\n",
		victim, g.N(), res.Rounds, repaired.MaxDegree())
}

// expendableSensor picks a tree leaf whose removal keeps the radio
// network connected — a battery death the network can survive.
func expendableSensor(g *graph.Graph, t *trees.Tree) (graph.NodeID, bool) {
	ix := trees.NewIndex(t)
	for _, v := range t.Nodes() {
		if len(ix.Children(v)) > 0 || v == t.Root() {
			continue
		}
		sim := g.Clone()
		if err := sim.RemoveNode(v); err != nil {
			continue
		}
		if sim.Connected() {
			return v, true
		}
	}
	return 0, false
}
