// BFS routing tree with always-on self-repair (the paper's Section III
// example): the fully integrated rule system — substrate construction,
// malleable labels, PLS-guided improvement rule, loop-free switches —
// runs as one transition function. Starting from a deliberately bad
// (DFS-shaped) routing tree, the system repairs itself into a BFS tree
// while *remaining a spanning tree after every single step*, so routing
// never breaks during repair.
//
//	go run ./examples/bfsrouting
package main

import (
	"fmt"
	"log"

	"silentspan/internal/bfs"
	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

func main() {
	// A lollipop topology: dense cluster plus a long access chain —
	// DFS trees of it are terrible for routing latency.
	g := graph.Lollipop(8, 10)
	root := g.MinID()
	bad, err := trees.DFSTree(g, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d m=%d; initial DFS routing tree height %d\n",
		g.N(), g.M(), heightOf(bad))

	net, err := runtime.NewNetwork(g, bfs.Algorithm{})
	if err != nil {
		log.Fatal(err)
	}
	if err := switching.InitFromTree(net, bad); err != nil {
		log.Fatal(err)
	}

	// The monitor proves the headline property: a spanning tree after
	// every single move — the repair is loop-free, routing stays up.
	stepsChecked := 0
	net.AddMonitor(runtime.MonitorFunc(func(n *runtime.Network) error {
		stepsChecked++
		_, err := switching.ExtractTree(n, switching.RegOf)
		return err
	}))

	res, err := net.Run(runtime.Central(), 2_000_000)
	if err != nil {
		log.Fatalf("loop-freedom violated: %v", err)
	}
	tree, err := switching.ExtractTree(net, switching.RegOf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired in %d rounds (%d moves): height %d, exact BFS = %v\n",
		res.Rounds, res.Moves, heightOf(tree), trees.IsBFSTree(tree, g))
	fmt.Printf("spanning tree verified after every one of %d steps — routing never broke\n",
		stepsChecked)
	fmt.Printf("silent: %v, registers: %d bits\n", res.Silent, res.MaxRegisterBits)
}

func heightOf(t *trees.Tree) int {
	h := 0
	for _, d := range t.Depths() {
		if d > h {
			h = d
		}
	}
	return h
}
