module silentspan

go 1.24
